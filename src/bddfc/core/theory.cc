#include "bddfc/core/theory.h"

#include <algorithm>

namespace bddfc {

Status Theory::AddRule(Rule rule) {
  BDDFC_RETURN_NOT_OK(rule.Validate(*sig_));
  if (rule.label.empty()) {
    rule.label = "r" + std::to_string(rules_.size());
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

std::unordered_set<PredId> Theory::TgpCandidates() const {
  std::unordered_set<PredId> tgps;
  for (const Rule& r : rules_) {
    if (r.IsExistential()) {
      for (const Atom& h : r.head) tgps.insert(h.pred);
    }
  }
  return tgps;
}

bool Theory::IsSpade5Normal() const {
  std::unordered_set<PredId> tgps = TgpCandidates();
  for (const Rule& r : rules_) {
    if (r.IsExistential()) {
      if (r.head.size() != 1) return false;
      const Atom& h = r.head[0];
      if (h.args.size() != 2) return false;
      std::vector<TermId> ex = r.ExistentialVariables();
      if (ex.size() != 1) return false;
      // Witness must be the second argument; first argument must be a
      // body (frontier) variable.
      if (h.args[1] != ex[0]) return false;
      if (!IsVar(h.args[0]) || h.args[0] == ex[0]) return false;
    } else {
      for (const Atom& h : r.head) {
        if (tgps.count(h.pred)) return false;
      }
    }
  }
  return true;
}

bool Theory::IsSingleHead() const {
  return std::all_of(rules_.begin(), rules_.end(),
                     [](const Rule& r) { return r.IsSingleHead(); });
}

int Theory::MaxBodyVariables() const {
  int m = 0;
  for (const Rule& r : rules_) {
    m = std::max(m, static_cast<int>(r.BodyVariables().size()));
  }
  return m;
}

int32_t Theory::MaxVariableIndex() const {
  int32_t m = 0;
  auto scan = [&](const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) {
      for (TermId t : a.args) {
        if (IsVar(t)) m = std::max(m, DecodeVar(t) + 1);
      }
    }
  };
  for (const Rule& r : rules_) {
    scan(r.body);
    scan(r.head);
  }
  return m;
}

std::string Theory::ToString() const {
  std::string s;
  for (const Rule& r : rules_) {
    s += r.ToString(*sig_);
    s += ".\n";
  }
  return s;
}

}  // namespace bddfc
