#include "bddfc/finitemodel/pipeline.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "bddfc/chase/chase.h"
#include "bddfc/chase/skeleton.h"
#include "bddfc/chase/supervisor.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/eval/match.h"
#include "bddfc/obs/trace.h"
#include "bddfc/reductions/reductions.h"
#include "bddfc/types/coloring.h"
#include "bddfc/types/conservativity.h"
#include "bddfc/types/ptype.h"
#include "bddfc/types/quotient.h"

namespace bddfc {

namespace {

/// Projects a structure onto the predicates with id < `num_original`
/// (drops colors, hidden-query and normalization auxiliaries).
Structure ProjectToOriginal(const Structure& s, int num_original) {
  Structure out(s.signature_ptr());
  s.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    if (p < num_original) out.AddFact(p, row);
  });
  for (TermId e : s.Domain()) out.AddDomainElement(e);
  return out;
}

}  // namespace

FiniteModelResult ConstructFiniteCounterModel(
    const Theory& theory, const Structure& instance,
    const ConjunctiveQuery& query, const PipelineOptions& options) {
  SignaturePtr sig = theory.signature_ptr();
  FiniteModelResult result(sig);
  obs::TraceSpan pipeline_span("pipeline.run");
  const int num_original_preds = sig->num_predicates();

  ExecutionContext local_ctx;
  ExecutionContext* ctx =
      options.context != nullptr ? options.context : &local_ctx;
  const bool governed = options.context != nullptr;
  // Phase sub-budgets: chase gets half the bytes, the rewriter a quarter,
  // everything else charges the shared remainder. 0 = unlimited.
  const size_t mem_limit = ctx->memory().limit();
  const size_t chase_mem = mem_limit != 0 ? mem_limit / 2 : 0;
  std::unique_ptr<ExecutionContext> rewrite_ctx =
      ctx->CreateChild(mem_limit != 0 ? mem_limit / 4 : 0);

  // Fills the resource account before a return. The governed-trip exits
  // additionally stash the freshest chase prefix in partial_chase.
  auto finalize = [&] {
    result.report = ctx->report();
    result.report.partial_result = result.partial_chase.NumFacts() > 0;
  };

  // Scope: binary theories (Theorem 1) directly; theories whose TGD heads
  // have at most one frontier variable (Theorem 3) via the §5.1 head
  // binarization — the proof only uses binarity of the TGD heads.
  bool needs_binarization = !IsBinaryTheory(theory);
  for (const Rule& r : theory.rules()) {
    if (r.IsExistential() &&
        (!r.IsSingleHead() || r.head[0].args.size() > 2 ||
         r.ExistentialVariables().size() > 1)) {
      needs_binarization = true;
    }
  }
  std::optional<Theory> binarized;
  const Theory* base = &theory;
  if (needs_binarization) {
    Result<Theory> b = BinarizeHeads(theory);
    if (!b.ok()) {
      result.status = Status::InvalidArgument(
          "theory is outside the Theorem 1/3 scope (" +
          b.status().message() + "); apply the §5.2/§5.3 reductions first");
      return result;
    }
    binarized = std::move(b).value();
    base = &*binarized;
  }

  // Step 1 (♠4): hide the query. Stage scopes (here and below) are RAII:
  // every exit path — success, error, governed trip — closes the phase in
  // the report and the stage's trace span together.
  Result<HiddenQuery> hidden = [&] {
    PhaseScope scope(ctx, "hide");
    return HideQuery(*base, query);
  }();
  if (!hidden.ok()) {
    result.status = hidden.status();
    return result;
  }
  // Step 2 (♠5): normal form. Split multi-head datalog rules first.
  Result<Theory> normalized = [&]() -> Result<Theory> {
    PhaseScope scope(ctx, "normalize");
    Result<Theory> single = SingleHeadify(hidden.value().theory);
    if (!single.ok()) return single;
    return NormalizeSpade5(single.value());
  }();
  if (!normalized.ok()) {
    result.status = normalized.status();
    return result;
  }
  const Theory& t = normalized.value();
  const PredId f_pred = hidden.value().f;

  // The coloring window m: κ of §3.3, computed from the rewriter (budgeted;
  // the certification step covers any shortfall), capped at max_m.
  int m = options.m_override;
  bool kappa_aborted = false;
  {
    PhaseScope kappa_scope(ctx, "kappa");
    if (m < 0) {
      RewriteOptions ropts = options.rewrite_options;
      ropts.context = rewrite_ctx.get();
      KappaResult kappa = ComputeKappa(t, ropts);
      // Count-budget Unknowns are tolerated (certification covers the
      // shortfall), but a governed trip ends the run here. CheckPoint, not
      // Exhausted(): a trip latched inside the child is re-evaluated against
      // the shared deadline/budget/token here on the parent.
      Status cp = ctx->CheckPoint("pipeline kappa");
      if (!cp.ok()) {
        result.status = std::move(cp);
        kappa_aborted = true;
      } else {
        m = std::max(kappa.kappa, t.MaxBodyVariables());
        m = std::max(m, 1);
      }
    }
    if (!kappa_aborted) {
      m = std::min(m, options.max_m);
      result.kappa = m;
      kappa_scope.set_progress("m=" + std::to_string(m));
    }
  }
  if (kappa_aborted) {
    // The scope above already closed the phase as "aborted", so the report
    // taken here shows it completed-with-abort rather than dangling open.
    finalize();
    return result;
  }

  size_t depth = options.initial_chase_depth;
  bool stop = false;
  while (!stop) {
    if (depth >= options.max_chase_depth) {
      depth = options.max_chase_depth;
      stop = true;
    }
    // Step 3: chase prefix. The chase runs under its own child context so
    // its max_rounds trip stays local — the depth-doubling loop depends on
    // retrying after exactly that trip. A chase-phase *memory* trip is
    // likewise local to the phase's sub-budget: the pipeline proceeds with
    // the prefix (graceful degradation); only root-level trips abort.
    ChaseResult chase = [&] {
      PhaseScope scope(ctx, "chase");
      ChaseOptions copts;
      copts.max_rounds = depth;
      copts.max_facts = options.max_chase_facts;
      copts.paranoia = options.paranoia;
      SupervisorOptions sup;
      sup.context = ctx;
      sup.max_retries = options.supervisor_max_retries;
      sup.child_memory_limit = chase_mem;
      SupervisedChase s = RunChaseSupervised(t, instance, copts, sup);
      scope.set_progress("depth " + std::to_string(depth) + ", " +
                         std::to_string(s.result.structure.NumFacts()) +
                         " facts" +
                         (s.recovered ? ", recovered after " +
                                            std::to_string(s.attempts) +
                                            " attempts"
                                      : std::string()));
      return std::move(s.result);
    }();

    // An unrecovered kInternal (injected fault / paranoia violation that
    // survived the whole retry ladder) ends the run with the best prefix:
    // the chase's round-atomic contract makes it a complete prefix.
    if (chase.status.code() == StatusCode::kInternal) {
      result.status = chase.status;
      result.partial_chase = std::move(chase.structure);
      result.partial_chase_rounds = chase.rounds_run;
      finalize();
      return result;
    }

    Status chase_cp = ctx->CheckPoint("pipeline chase");
    if (!chase_cp.ok()) {
      // Governed trip: hand back the best partial result — the chase
      // prefix up to its last complete round — with the report attached.
      result.status = std::move(chase_cp);
      result.partial_chase = std::move(chase.structure);
      result.partial_chase_rounds = chase.rounds_run;
      finalize();
      return result;
    }

    // F present => Chase(D, T₀) ⊨ Q: no counter-model exists (§3.1).
    if (!chase.structure.Rows(f_pred).empty()) {
      result.query_certainly_true = true;
      result.status = Status::FailedPrecondition(
          "the query is certainly true: Chase(D, T) derives it");
      finalize();
      result.report.partial_result = false;
      return result;
    }

    if (chase.fixpoint_reached) {
      // The chase itself is a finite model avoiding F; certify directly.
      Structure candidate =
          ProjectToOriginal(chase.structure, num_original_preds);
      PipelineAttempt attempt;
      attempt.chase_depth = chase.rounds_run;
      attempt.n = 0;
      {
        PhaseScope scope(ctx, "certify");
        if (candidate.ContainsAllFactsOf(instance) &&
            CheckModel(candidate, theory) == std::nullopt &&
            !Satisfies(candidate, query)) {
          attempt.certified = true;
          scope.set_progress("finite chase certified directly");
        } else {
          scope.set_progress("finite chase failed certification");
        }
      }
      if (attempt.certified) {
        result.attempts.push_back(attempt);
        result.model = std::move(candidate);
        result.chase_depth_used = chase.rounds_run;
        finalize();
        result.report.partial_result = false;
        return result;
      }
      attempt.failure = "finite chase failed certification";
      result.attempts.push_back(attempt);
      break;  // deeper chase cannot change a reached fixpoint
    }

    // Step 4: skeleton.
    SkeletonAnalysis forest;
    Skeleton skeleton = [&] {
      PhaseScope scope(ctx, "skeleton");
      Skeleton s = SkeletonOf(t, instance, chase);
      forest = AnalyzeSkeleton(s.structure);
      scope.set_progress(std::to_string(s.structure.NumFacts()) + " facts");
      return s;
    }();
    if (!forest.is_forest) {
      result.status = Status::Internal(
          "skeleton is not a forest — (♠5) normalization violated Lemma 3");
      return result;
    }

    // Step 5: color, quotient; step 6: saturate; step 7: certify.
    Result<Coloring> coloring = [&] {
      PhaseScope scope(ctx, "color");
      return NaturalColoring(skeleton.structure, m);
    }();
    if (!coloring.ok()) {
      result.status = coloring.status();
      return result;
    }
    const Coloring& col = coloring.value();

    for (int n = options.initial_n; n <= options.max_n; ++n) {
      Status cp = ctx->CheckPoint("pipeline attempt");
      if (!cp.ok()) {
        result.status = std::move(cp);
        result.partial_chase = std::move(chase.structure);
        result.partial_chase_rounds = chase.rounds_run;
        finalize();
        return result;
      }
      PipelineAttempt attempt;
      attempt.chase_depth = depth;
      attempt.n = n;
      attempt.skeleton_facts = skeleton.structure.NumFacts();

      // Quotient by the ancestor-path partition: it computes the types the
      // elements have in the *infinite* chase, so the prefix frontier merges
      // with interior elements instead of leaving witness-less tails (see
      // ptype.h). Prefix-exact partitions (ExactPtpPartition) would keep
      // the frontier distinct and the candidate would fail certification.
      Quotient quotient = [&] {
        PhaseScope scope(ctx, "quotient");
        TypePartition partition = AncestorPathPartition(col.colored, n);
        Quotient q = BuildQuotient(col.colored, partition);
        scope.set_progress(
            "n=" + std::to_string(n) + ", " +
            std::to_string(q.structure.Domain().size()) + " elements");
        return q;
      }();
      attempt.quotient_size =
          static_cast<int>(quotient.structure.Domain().size());

      if (options.check_conservativity) {
        std::unique_ptr<ExecutionContext> cons_ctx = ctx->CreateChild(0);
        ConservativityReport rep = CheckConservativeUpTo(
            col.colored, quotient, m, col.base_predicates,
            options.max_patterns, cons_ctx.get());
        // A budget trip makes rep.conservative meaningless — say so
        // instead of silently reporting "not conservative".
        attempt.conservativity_inconclusive = !rep.status.ok();
        attempt.conservative = rep.status.ok() && rep.conservative;
      }

      // Step 6: datalog saturation (Lemma 5: the TGDs stay satisfied).
      ChaseResult saturated = [&] {
        PhaseScope scope(ctx, "saturate");
        ChaseOptions sat;
        sat.datalog_only = true;
        sat.max_rounds = options.max_saturation_rounds;
        sat.max_facts = options.max_chase_facts;
        sat.paranoia = options.paranoia;
        SupervisorOptions sup;
        sup.context = ctx;
        sup.max_retries = options.supervisor_max_retries;
        SupervisedChase s = RunChaseSupervised(t, quotient.structure, sat, sup);
        scope.set_progress(std::to_string(s.result.structure.NumFacts()) +
                           " facts");
        return std::move(s.result);
      }();
      if (saturated.status.code() == StatusCode::kInternal) {
        result.status = saturated.status;
        result.partial_chase = std::move(chase.structure);
        result.partial_chase_rounds = chase.rounds_run;
        finalize();
        return result;
      }
      if (!saturated.status.ok()) {
        Status sat_cp = ctx->CheckPoint("pipeline saturation");
        if (!sat_cp.ok()) {
          result.status = std::move(sat_cp);
          result.partial_chase = std::move(chase.structure);
          result.partial_chase_rounds = chase.rounds_run;
          finalize();
          return result;
        }
        attempt.failure = "saturation: " + saturated.status.ToString();
        result.attempts.push_back(attempt);
        if (governed) {
          ctx->memory().Release(saturated.structure.ApproxAccountedBytes());
        }
        continue;
      }

      // Step 7: certification against the ORIGINAL theory and query.
      Structure candidate =
          ProjectToOriginal(saturated.structure, num_original_preds);
      {
        PhaseScope cert_scope(ctx, "certify");
        if (!candidate.ContainsAllFactsOf(instance)) {
          attempt.failure = "candidate lost facts of D";
        } else if (auto violation = CheckModel(candidate, theory)) {
          attempt.failure =
              "not a model: " + violation->ToString(*sig);
        } else if (Satisfies(candidate, query)) {
          attempt.failure = "candidate satisfies the query";
        } else {
          attempt.certified = true;
          cert_scope.set_progress(
              "model with " + std::to_string(candidate.NumFacts()) +
              " facts at depth " + std::to_string(depth) +
              ", n=" + std::to_string(n));
        }
        if (!attempt.certified) cert_scope.set_progress(attempt.failure);
      }
      if (attempt.certified) {
        result.attempts.push_back(attempt);
        result.model = std::move(candidate);
        result.n_used = n;
        result.chase_depth_used = depth;
        finalize();
        result.report.partial_result = false;
        return result;
      }
      result.attempts.push_back(attempt);
      if (governed) {
        ctx->memory().Release(saturated.structure.ApproxAccountedBytes());
      }
    }
    // This depth's chase prefix is rebuilt (deeper) next iteration; hand
    // its allowance back to the budget.
    if (governed) {
      ctx->memory().Release(chase.structure.ApproxAccountedBytes());
    }
    depth *= 2;
  }

  // Reaching this point means every attempt failed on its *explicit*
  // per-attempt budgets or certification — never a silent governor trip
  // (those return above, as ResourceExhausted with the report attached).
  ctx->NotePhase("pipeline",
                 std::to_string(result.attempts.size()) + " attempts, none certified");
  result.status = Status::Unknown(
      "no certified finite model within budgets (" +
      std::to_string(result.attempts.size()) + " attempts)");
  finalize();
  result.report.partial_result = false;
  return result;
}

}  // namespace bddfc
