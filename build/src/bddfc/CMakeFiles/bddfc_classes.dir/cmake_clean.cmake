file(REMOVE_RECURSE
  "CMakeFiles/bddfc_classes.dir/classes/recognizers.cc.o"
  "CMakeFiles/bddfc_classes.dir/classes/recognizers.cc.o.d"
  "CMakeFiles/bddfc_classes.dir/classes/vtdag.cc.o"
  "CMakeFiles/bddfc_classes.dir/classes/vtdag.cc.o.d"
  "libbddfc_classes.a"
  "libbddfc_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
