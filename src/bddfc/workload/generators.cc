#include "bddfc/workload/generators.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

namespace bddfc {

Structure RandomGraph(SignaturePtr sig, int nodes, int edges, uint64_t seed,
                      int num_relations) {
  Rng rng(seed);
  std::vector<PredId> rels;
  for (int i = 0; i < num_relations; ++i) {
    rels.push_back(std::move(sig->AddPredicate("e" + std::to_string(i), 2))
                       .ValueOrDie());
  }
  Structure s(sig);
  std::vector<TermId> elems;
  elems.reserve(nodes);
  for (int i = 0; i < nodes; ++i) elems.push_back(sig->AddNull("v"));
  for (int i = 0; i < edges; ++i) {
    PredId p = rels[rng.Uniform(rels.size())];
    TermId from = elems[rng.Uniform(nodes)];
    TermId to = elems[rng.Uniform(nodes)];
    s.AddFact(p, {from, to});
  }
  return s;
}

ConjunctiveQuery PathQuery(PredId pred, int k) {
  ConjunctiveQuery q;
  for (int i = 0; i < k; ++i) {
    q.atoms.push_back(Atom(pred, {MakeVar(i), MakeVar(i + 1)}));
  }
  return q;
}

ConjunctiveQuery StarQuery(PredId pred, int k) {
  ConjunctiveQuery q;
  for (int i = 1; i <= k; ++i) {
    q.atoms.push_back(Atom(pred, {MakeVar(0), MakeVar(i)}));
  }
  return q;
}

ConjunctiveQuery CycleQuery(PredId pred, int k) {
  ConjunctiveQuery q;
  for (int i = 0; i < k; ++i) {
    q.atoms.push_back(Atom(pred, {MakeVar(i), MakeVar((i + 1) % k)}));
  }
  return q;
}

Theory RandomLinearTheory(SignaturePtr sig, int preds, int rules,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<PredId> ps;
  for (int i = 0; i < preds; ++i) {
    ps.push_back(std::move(sig->AddPredicate("p" + std::to_string(i), 2))
                     .ValueOrDie());
  }
  Theory theory(sig);
  for (int i = 0; i < rules; ++i) {
    PredId body = ps[rng.Uniform(ps.size())];
    PredId head = ps[rng.Uniform(ps.size())];
    TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
    Rule r;
    r.body.push_back(Atom(body, {x, y}));
    switch (rng.Uniform(3)) {
      case 0:  // existential successor
        r.head.push_back(Atom(head, {y, z}));
        break;
      case 1:  // swap
        r.head.push_back(Atom(head, {y, x}));
        break;
      default:  // copy
        r.head.push_back(Atom(head, {x, y}));
        break;
    }
    Status st = theory.AddRule(std::move(r));
    assert(st.ok());
    (void)st;
  }
  return theory;
}

Theory RandomGuardedTheory(SignaturePtr sig, int max_arity, int rules,
                           uint64_t seed) {
  assert(max_arity >= 2);
  Rng rng(seed);
  // A pool of predicates of arities 1..max_arity.
  std::vector<PredId> pool;
  for (int a = 1; a <= max_arity; ++a) {
    for (int i = 0; i < 2; ++i) {
      pool.push_back(std::move(sig->AddPredicate(
                                   "g" + std::to_string(a) + "_" +
                                       std::to_string(i),
                                   a))
                         .ValueOrDie());
    }
  }
  Theory theory(sig);
  for (int i = 0; i < rules; ++i) {
    // Guard: a widest predicate over distinct variables x0..x_{a-1}.
    PredId guard = pool[pool.size() - 1 - rng.Uniform(2)];
    int ga = sig->arity(guard);
    Rule r;
    std::vector<TermId> guard_vars;
    for (int v = 0; v < ga; ++v) guard_vars.push_back(MakeVar(v));
    r.body.push_back(Atom(guard, guard_vars));
    // Optional side atom over a subset of the guard variables.
    if (rng.Uniform(2) == 0) {
      PredId side = pool[rng.Uniform(pool.size())];
      int sa = sig->arity(side);
      std::vector<TermId> args;
      for (int v = 0; v < sa; ++v) {
        args.push_back(guard_vars[rng.Uniform(guard_vars.size())]);
      }
      r.body.push_back(Atom(side, args));
    }
    // Head: existential or datalog over guard variables + one fresh.
    PredId head = pool[rng.Uniform(pool.size())];
    int ha = sig->arity(head);
    std::vector<TermId> args;
    bool existential = rng.Uniform(2) == 0;
    for (int v = 0; v < ha; ++v) {
      if (existential && v == ha - 1) {
        args.push_back(MakeVar(ga));  // fresh witness
      } else {
        args.push_back(guard_vars[rng.Uniform(guard_vars.size())]);
      }
    }
    r.head.push_back(Atom(head, args));
    Status st = theory.AddRule(std::move(r));
    assert(st.ok());
    (void)st;
  }
  return theory;
}

Theory RandomAcyclicBinaryTheory(SignaturePtr sig, int preds, int tgds,
                                 int datalog_rules, uint64_t seed) {
  assert(preds >= 2);
  Rng rng(seed);
  std::vector<PredId> ps;
  for (int i = 0; i < preds; ++i) {
    ps.push_back(std::move(sig->AddPredicate("b" + std::to_string(i), 2))
                     .ValueOrDie());
  }
  Theory theory(sig);
  // TGDs only point "up" the predicate order => weakly acyclic => BDD-ish
  // and the chase terminates on every instance.
  for (int i = 0; i < tgds; ++i) {
    size_t b = rng.Uniform(ps.size() - 1);
    size_t h = b + 1 + rng.Uniform(ps.size() - b - 1);
    Rule r;
    r.body.push_back(Atom(ps[b], {MakeVar(0), MakeVar(1)}));
    r.head.push_back(Atom(ps[h], {MakeVar(1), MakeVar(2)}));
    Status st = theory.AddRule(std::move(r));
    assert(st.ok());
    (void)st;
  }
  for (int i = 0; i < datalog_rules; ++i) {
    // p(x, y), q(y, z) -> r(x, z) with r at least as high in the predicate
    // order as p and q — normal dependency edges then never point below a
    // special edge's source, keeping the theory weakly acyclic.
    size_t b1 = rng.Uniform(ps.size());
    size_t b2 = rng.Uniform(ps.size());
    size_t lo = std::max(b1, b2);
    size_t h = lo + rng.Uniform(ps.size() - lo);
    Rule r;
    r.body.push_back(Atom(ps[b1], {MakeVar(0), MakeVar(1)}));
    r.body.push_back(Atom(ps[b2], {MakeVar(1), MakeVar(2)}));
    r.head.push_back(Atom(ps[h], {MakeVar(0), MakeVar(2)}));
    Status st = theory.AddRule(std::move(r));
    assert(st.ok());
    (void)st;
  }
  return theory;
}

}  // namespace bddfc
