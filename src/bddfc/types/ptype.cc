#include "bddfc/types/ptype.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bddfc/chase/skeleton.h"
#include "bddfc/eval/match.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

struct TypeOracle::Impl {
  const Structure& a;
  const Structure& b;
  TypeOracleOptions options;

  /// Ungoverned oracles fall back to a local (limitless) context so the
  /// pattern loop has one code path.
  ExecutionContext local_ctx;
  ExecutionContext* ctx = nullptr;
  size_t charged_bytes = 0;  // incident-index estimate, released in ~Impl

  std::vector<char> in_theta;   // indexed by PredId
  bool const_only_ok = true;    // constant-only atoms of A hold in B
  std::vector<TermId> a_nulls;
  /// Atoms of A (over Θ) incident to each null: (pred, row).
  std::unordered_map<TermId, std::vector<std::pair<PredId, uint32_t>>>
      incident;
  mutable size_t patterns_checked = 0;

  Impl(const Structure& a_, const Structure& b_,
       const TypeOracleOptions& opts)
      : a(a_), b(b_), options(opts) {
    ctx = options.context != nullptr ? options.context : &local_ctx;
    assert(a.signature_ptr().get() == b.signature_ptr().get() &&
           "type oracle requires a shared signature");
    in_theta.assign(a.sig().num_predicates(), 0);
    if (options.predicates.empty()) {
      std::fill(in_theta.begin(), in_theta.end(), 1);
    } else {
      for (PredId p : options.predicates) in_theta[p] = 1;
    }
    for (PredId p = 0; p < a.sig().num_predicates(); ++p) {
      if (!in_theta[p]) continue;
      const auto& rows = a.Rows(p);
      for (uint32_t r = 0; r < rows.size(); ++r) {
        bool has_null = false;
        std::unordered_set<TermId> elems(rows[r].begin(), rows[r].end());
        for (TermId t : elems) {
          if (a.sig().IsNull(t)) {
            incident[t].emplace_back(p, r);
            has_null = true;
          }
        }
        if (!has_null && !b.Contains(p, rows[r])) const_only_ok = false;
      }
    }
    for (TermId e : a.Domain()) {
      if (a.sig().IsNull(e)) a_nulls.push_back(e);
    }
    // Account the incident index (the oracle's dominant allocation) for
    // the oracle's lifetime when a governor is attached.
    if (options.context != nullptr) {
      for (const auto& [e, rows] : incident) {
        (void)e;
        charged_bytes += 64 + rows.size() * sizeof(rows[0]);
      }
      ctx->memory().Charge(charged_bytes);
    }
  }

  ~Impl() {
    if (charged_bytes != 0) ctx->memory().Release(charged_bytes);
  }

  /// Builds the canonical query of A ↾ (S ∪ C_con) over Θ, with the
  /// elements of S as variables. Returns the atom list; vars are indexed by
  /// position of the element in S.
  std::vector<Atom> PatternQuery(const std::vector<TermId>& s) const {
    std::unordered_map<TermId, TermId> var_of;
    for (size_t i = 0; i < s.size(); ++i) {
      var_of.emplace(s[i], MakeVar(static_cast<int32_t>(i)));
    }
    std::vector<Atom> atoms;
    std::unordered_set<int64_t> seen_rows;
    for (TermId e : s) {
      auto it = incident.find(e);
      if (it == incident.end()) continue;
      for (auto [pred, row] : it->second) {
        if (!seen_rows.insert((int64_t(pred) << 32) | row).second) continue;
        const std::vector<TermId>& args = a.Rows(pred)[row];
        Atom atom;
        atom.pred = pred;
        atom.args.reserve(args.size());
        bool inside = true;
        for (TermId t : args) {
          auto vit = var_of.find(t);
          if (vit != var_of.end()) {
            atom.args.push_back(vit->second);
          } else if (!a.sig().IsNull(t)) {
            atom.args.push_back(t);  // named constant context
          } else {
            inside = false;  // atom leaves S ∪ C_con
            break;
          }
        }
        if (inside) atoms.push_back(std::move(atom));
      }
    }
    return atoms;
  }

  mutable bool budget_hit = false;

  /// Checks all patterns S (subsets of A's nulls) against the target: with
  /// `pinned` >= 0, S always contains `pinned` and the canonical query is
  /// evaluated with pinned ↦ eb; with `pinned` < 0, S starts empty and the
  /// query is evaluated unpinned. `extra_budget` bounds the nulls added on
  /// top of the pin.
  bool PatternsHold(TermId pinned, TermId eb, int extra_budget) const {
    Matcher matcher(b);
    std::vector<TermId> s;
    if (pinned >= 0) s.push_back(pinned);
    std::vector<size_t> stack;  // indexes into a_nulls (combination DFS)
    auto check_current = [&]() {
      if (ctx->ShouldStop("ptype patterns")) {
        budget_hit = true;  // governor trip: answers become inconclusive
        return false;
      }
      ++patterns_checked;
      if (patterns_checked >= options.max_patterns) {
        budget_hit = true;
        return false;
      }
      std::vector<Atom> q = PatternQuery(s);
      Binding pin;
      if (pinned >= 0) pin.emplace(MakeVar(0), eb);
      return matcher.Exists(q, pin);
    };
    if (!check_current()) return false;

    size_t next = 0;
    while (true) {
      if (static_cast<int>(stack.size()) < extra_budget &&
          next < a_nulls.size()) {
        TermId cand = a_nulls[next];
        // Skip the pin and candidates with no Θ-atoms at all: an isolated
        // variable never constrains satisfaction.
        if (cand != pinned && incident.count(cand)) {
          stack.push_back(next);
          s.push_back(cand);
          if (!check_current()) return false;
          next = next + 1;
          continue;
        }
        ++next;
        continue;
      }
      if (stack.empty()) break;
      next = stack.back() + 1;
      stack.pop_back();
      s.pop_back();
    }
    return true;
  }
};

TypeOracle::TypeOracle(const Structure& a, const Structure& b,
                       const TypeOracleOptions& options)
    : impl_(std::make_unique<Impl>(a, b, options)) {}

TypeOracle::~TypeOracle() {
  // Bridge the oracle's run-scoped tally into the registry once, at the
  // end of its life (a moved-from oracle has no impl and publishes nothing).
  if (impl_ == nullptr) return;
  // The run's registry, resolved through the context the oracle was built
  // with (callers keep it alive for the oracle's lifetime).
  obs::MetricsRegistry& reg = impl_->ctx->metrics_registry();
  if (reg.enabled()) {
    reg.GetCounter("bddfc.ptype.oracles")->Add(1);
    reg.GetCounter("bddfc.ptype.patterns_checked")->Add(
        impl_->patterns_checked);
  }
}
TypeOracle::TypeOracle(TypeOracle&&) noexcept = default;
TypeOracle& TypeOracle::operator=(TypeOracle&&) noexcept = default;

bool TypeOracle::TypeContained(TermId ea, TermId eb) const {
  const Impl& im = *impl_;
  if (!im.const_only_ok) return false;
  if (!im.a.sig().IsNull(ea)) {
    // Named constant: the query y = ea (allowed by Def. 3) forces eb == ea.
    // The remaining queries fold y into the constant context, leaving
    // unpinned patterns over at most n-1 nulls.
    if (eb != ea) return false;
    return im.PatternsHold(-1, -1, im.options.num_variables - 1);
  }
  return im.PatternsHold(ea, eb, im.options.num_variables - 1);
}

size_t TypeOracle::patterns_checked() const {
  return impl_->patterns_checked;
}

bool TypeOracle::budget_exhausted() const { return impl_->budget_hit; }

int TypePartition::ClassOf(TermId e) const {
  for (size_t i = 0; i < elements.size(); ++i) {
    if (elements[i] == e) return class_id[i];
  }
  return -1;
}

Result<TypePartition> ExactPtpPartition(const Structure& c, int n,
                                        const std::vector<PredId>& predicates,
                                        size_t max_patterns,
                                        ExecutionContext* context) {
  obs::TraceSpan span(&ContextTracer(context), "ptype.exact_partition");
  TypeOracleOptions opts;
  opts.num_variables = n;
  opts.predicates = predicates;
  opts.max_patterns = max_patterns;
  opts.context = context;
  TypeOracle oracle(c, c, opts);

  TypePartition out;
  out.n = n;
  out.elements = c.Domain();
  out.class_id.assign(out.elements.size(), -1);
  std::vector<TermId> reps;
  for (size_t i = 0; i < out.elements.size(); ++i) {
    TermId e = out.elements[i];
    int found = -1;
    for (size_t r = 0; r < reps.size(); ++r) {
      if (!c.sig().IsNull(e) || !c.sig().IsNull(reps[r])) {
        if (e == reps[r]) found = static_cast<int>(r);
        continue;
      }
      if (oracle.TypeContained(e, reps[r]) &&
          oracle.TypeContained(reps[r], e)) {
        found = static_cast<int>(r);
        break;
      }
    }
    if (found < 0) {
      found = static_cast<int>(reps.size());
      reps.push_back(e);
    }
    out.class_id[i] = found;
    if (oracle.budget_exhausted()) {
      // Inconclusive containments make the whole partition unusable, so no
      // partial result is returned. Record the trip on the governor (a
      // governed trip is already latched; RecordExhaustion keeps it).
      std::string detail = "type partition exceeded max_patterns=" +
                           std::to_string(max_patterns);
      if (context != nullptr) {
        return context->RecordExhaustion(ResourceKind::kPatterns,
                                         std::move(detail));
      }
      return Status::ResourceExhausted(std::move(detail));
    }
  }
  out.num_classes = static_cast<int>(reps.size());
  return out;
}

namespace {

/// Neighborhood canonicalization for BallPartition.
struct BallCanon {
  const Structure& c;
  const std::vector<char>& in_theta;

  /// Undirected adjacency among nulls: neighbor -> concatenated edge labels.
  std::unordered_map<TermId, std::map<TermId, std::string>> adj;
  /// Per-element local label: unary atoms + links to named constants.
  std::unordered_map<TermId, std::string> label;

  BallCanon(const Structure& s, const std::vector<char>& theta)
      : c(s), in_theta(theta) {
    c.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
      if (!in_theta[p]) return;
      std::string pname = std::to_string(p);
      if (row.size() == 1) {
        label[row[0]] += "u" + pname + ";";
        return;
      }
      if (row.size() != 2) return;  // BallPartition targets binary structures
      bool n0 = c.sig().IsNull(row[0]);
      bool n1 = c.sig().IsNull(row[1]);
      if (n0 && n1) {
        if (row[0] == row[1]) {
          label[row[0]] += "l" + pname + ";";  // self-loop as a label
        } else {
          adj[row[0]][row[1]] += ">" + pname + ";";
          adj[row[1]][row[0]] += "<" + pname + ";";
        }
      } else if (n0) {
        label[row[0]] += "c>" + pname + "," + std::to_string(row[1]) + ";";
      } else if (n1) {
        label[row[1]] += "c<" + pname + "," + std::to_string(row[0]) + ";";
      }
    });
    for (auto& [e, l] : label) {
      (void)e;
      l = SortSegments(l);
    }
  }

  static std::string SortSegments(const std::string& s) {
    std::vector<std::string> parts;
    std::string cur;
    for (char ch : s) {
      cur += ch;
      if (ch == ';') {
        parts.push_back(cur);
        cur.clear();
      }
    }
    std::sort(parts.begin(), parts.end());
    std::string out;
    for (auto& p : parts) out += p;
    return out;
  }

  std::string LabelOf(TermId e) const {
    auto it = label.find(e);
    return it == label.end() ? std::string() : it->second;
  }

  std::unordered_map<TermId, int> Ball(TermId e, int r) const {
    std::unordered_map<TermId, int> dist = {{e, 0}};
    std::deque<TermId> q = {e};
    while (!q.empty()) {
      TermId u = q.front();
      q.pop_front();
      if (dist[u] == r) continue;
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (auto& [v, lbl] : it->second) {
        (void)lbl;
        if (!dist.count(v)) {
          dist[v] = dist[u] + 1;
          q.push_back(v);
        }
      }
    }
    return dist;
  }

  bool BallIsTree(const std::unordered_map<TermId, int>& ball) const {
    size_t edges = 0;
    for (auto& [u, d] : ball) {
      (void)d;
      auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (auto& [v, lbl] : it->second) {
        (void)lbl;
        if (ball.count(v)) ++edges;
      }
    }
    edges /= 2;
    return edges + 1 == ball.size();
  }

  std::string TreeCanon(TermId e, const std::unordered_map<TermId, int>& ball,
                        TermId parent) const {
    std::vector<std::string> children;
    auto it = adj.find(e);
    if (it != adj.end()) {
      for (auto& [v, lbl] : it->second) {
        if (v == parent || !ball.count(v)) continue;
        children.push_back("(" + lbl + TreeCanon(v, ball, e) + ")");
      }
    }
    std::sort(children.begin(), children.end());
    std::string s = "[" + LabelOf(e) + "]";
    for (auto& ch : children) s += ch;
    return s;
  }

  std::string WlCanon(TermId e,
                      const std::unordered_map<TermId, int>& ball) const {
    std::unordered_map<TermId, std::string> color;
    for (auto& [u, d] : ball) {
      (void)d;
      color[u] = LabelOf(u);
    }
    for (size_t round = 0; round < ball.size(); ++round) {
      std::unordered_map<TermId, std::string> next;
      for (auto& [u, cu] : color) {
        std::vector<std::string> neigh;
        auto it = adj.find(u);
        if (it != adj.end()) {
          for (auto& [v, lbl] : it->second) {
            if (ball.count(v)) neigh.push_back(lbl + "|" + color[v]);
          }
        }
        std::sort(neigh.begin(), neigh.end());
        std::string combined = cu + "#";
        for (auto& x : neigh) combined += x + "&";
        next[u] =
            std::to_string(HashRange(combined.begin(), combined.end()));
      }
      color = std::move(next);
    }
    std::vector<std::string> all;
    for (auto& [u, cu] : color) {
      (void)u;
      all.push_back(cu);
    }
    std::sort(all.begin(), all.end());
    std::string s = "WL:" + color[e] + "/";
    for (auto& x : all) s += x + ",";
    return s;
  }

  std::string Canon(TermId e, int radius) const {
    auto ball = Ball(e, radius);
    if (BallIsTree(ball)) return "T:" + TreeCanon(e, ball, -1);
    return WlCanon(e, ball);
  }
};

}  // namespace

TypePartition AncestorPathPartition(const Structure& c, int n,
                                    const std::vector<PredId>& predicates) {
  std::vector<char> in_theta(c.sig().num_predicates(), 0);
  if (predicates.empty()) {
    std::fill(in_theta.begin(), in_theta.end(), 1);
  } else {
    for (PredId p : predicates) in_theta[p] = 1;
  }
  BallCanon canon(c, in_theta);
  SkeletonAnalysis forest = AnalyzeSkeleton(c);

  TypePartition out;
  out.n = n;
  out.elements = c.Domain();
  out.class_id.assign(out.elements.size(), -1);
  std::unordered_map<std::string, int> key_to_class;
  for (size_t i = 0; i < out.elements.size(); ++i) {
    TermId e = out.elements[i];
    std::string key;
    if (!c.sig().IsNull(e)) {
      key = "const:" + std::to_string(e);  // Remark 1: singletons
    } else {
      key = canon.LabelOf(e);
      TermId cur = e;
      for (int step = 1; step < n; ++step) {
        auto pit = forest.parent.find(cur);
        if (pit == forest.parent.end()) {
          key += "^ROOT";
          break;
        }
        TermId parent = pit->second;
        auto ait = canon.adj.find(cur);
        std::string edge;
        if (ait != canon.adj.end()) {
          auto eit = ait->second.find(parent);
          if (eit != ait->second.end()) edge = eit->second;
        }
        key += "^" + edge + "|" + canon.LabelOf(parent);
        cur = parent;
      }
    }
    auto [it, inserted] =
        key_to_class.emplace(std::move(key), out.num_classes);
    if (inserted) ++out.num_classes;
    out.class_id[i] = it->second;
  }
  return out;
}

TypePartition BallPartition(const Structure& c, int n,
                            const std::vector<PredId>& predicates) {
  std::vector<char> in_theta(c.sig().num_predicates(), 0);
  if (predicates.empty()) {
    std::fill(in_theta.begin(), in_theta.end(), 1);
  } else {
    for (PredId p : predicates) in_theta[p] = 1;
  }
  BallCanon canon(c, in_theta);

  TypePartition out;
  out.n = n;
  out.elements = c.Domain();
  out.class_id.assign(out.elements.size(), -1);
  std::unordered_map<std::string, int> key_to_class;
  for (size_t i = 0; i < out.elements.size(); ++i) {
    TermId e = out.elements[i];
    std::string key;
    if (!c.sig().IsNull(e)) {
      key = "const:" + std::to_string(e);  // Remark 1: singletons
    } else {
      key = canon.Canon(e, n - 1);
    }
    auto [it, inserted] =
        key_to_class.emplace(std::move(key), out.num_classes);
    if (inserted) ++out.num_classes;
    out.class_id[i] = it->second;
  }
  return out;
}

}  // namespace bddfc
