# Empty dependencies file for guarded_binarization.
# This may be replaced when dependencies are built.
