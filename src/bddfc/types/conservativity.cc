#include "bddfc/types/conservativity.h"

#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

ConservativityReport CheckConservativeUpTo(const Structure& c,
                                           const Quotient& q, int m,
                                           const std::vector<PredId>& sigma,
                                           size_t max_positions,
                                           ExecutionContext* context) {
  ConservativityReport out;
  obs::TraceSpan span("types.conservativity");
  TypeOracleOptions opts;
  opts.num_variables = m;
  opts.predicates = sigma;
  opts.max_patterns = max_positions;
  opts.context = context;
  TypeOracle oracle(q.structure, c, opts);
  for (TermId e : c.Domain()) {
    TermId image = q.Project(e);
    if (image < 0 || !oracle.TypeContained(image, e)) {
      if (oracle.budget_exhausted()) {
        // The negative answer is inconclusive. A governed trip carries the
        // governor's detail; a count trip stays local to this report so
        // the caller can retry with other parameters.
        out.status =
            context != nullptr && context->Exhausted()
                ? context->CheckPoint("conservativity abort")
                : Status::ResourceExhausted(
                      "conservativity check exceeded max_positions=" +
                      std::to_string(max_positions));
        out.patterns_checked = oracle.patterns_checked();
        return out;
      }
      out.failing_element = e;
      out.patterns_checked = oracle.patterns_checked();
      return out;
    }
  }
  out.patterns_checked = oracle.patterns_checked();
  out.conservative = true;
  return out;
}

ConservativityProbe ProbeConservativity(const Structure& c, int m, int n,
                                        size_t max_positions,
                                        ExecutionContext* context) {
  ConservativityProbe out;
  obs::TraceSpan span("types.conservativity_probe");
  Result<Coloring> coloring = NaturalColoring(c, m);
  if (!coloring.ok()) {
    out.status = coloring.status();
    return out;
  }
  const Coloring& col = coloring.value();

  // Partition the colored structure by ≡_n over the full (colored)
  // signature: exact when the game fits the budget, ball refinement as the
  // fallback. The exact attempt runs under a child context so its
  // max_patterns trip stays local — only a *governed* trip (deadline,
  // memory, cancel) propagates and skips the fallback path too.
  TypePartition partition;
  std::unique_ptr<ExecutionContext> exact_child;
  if (context != nullptr) exact_child = context->CreateChild(0);
  Result<TypePartition> exact =
      ExactPtpPartition(col.colored, n, {}, max_positions, exact_child.get());
  if (exact.ok()) {
    partition = std::move(exact).value();
    out.used_exact_partition = true;
  } else {
    if (context != nullptr) {
      Status cp = context->CheckPoint("conservativity partition fallback");
      if (!cp.ok()) {
        out.status = std::move(cp);
        return out;
      }
    }
    partition = BallPartition(col.colored, n);
  }

  Quotient q = BuildQuotient(col.colored, partition);
  out.num_classes = partition.num_classes;
  out.quotient_size = static_cast<int>(q.structure.Domain().size());

  ConservativityReport rep = CheckConservativeUpTo(
      col.colored, q, m, col.base_predicates, max_positions, context);
  out.status = rep.status;
  out.conservative = rep.conservative;
  return out;
}

}  // namespace bddfc
