// Rules: existential TGDs and plain datalog rules (Datalog∃ programs).
//
// A rule is body ⇒ head with head a conjunction of atoms (usually a single
// atom; the paper's TGDs are single-head, multi-head is supported for the
// §5.3 reduction). Head variables absent from the body are existentially
// quantified.

#ifndef BDDFC_CORE_RULE_H_
#define BDDFC_CORE_RULE_H_

#include <string>
#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/core/atom.h"
#include "bddfc/core/signature.h"
#include "bddfc/core/term.h"

namespace bddfc {

/// One rule ∀x̄ (Φ(x̄) ⇒ ∃ȳ H(x̄', ȳ)) with x̄' ⊆ x̄.
struct Rule {
  std::vector<Atom> body;
  std::vector<Atom> head;
  /// Optional label for diagnostics ("r3", "hide-query", ...).
  std::string label;

  Rule() = default;
  Rule(std::vector<Atom> b, std::vector<Atom> h, std::string l = "")
      : body(std::move(b)), head(std::move(h)), label(std::move(l)) {}

  /// Distinct body variables, first-occurrence order.
  std::vector<TermId> BodyVariables() const;

  /// Distinct head variables, first-occurrence order.
  std::vector<TermId> HeadVariables() const;

  /// Head variables not occurring in the body (the ∃-quantified witnesses).
  std::vector<TermId> ExistentialVariables() const;

  /// Body variables that also occur in the head (the frontier ȳ).
  std::vector<TermId> FrontierVariables() const;

  /// True iff the rule has no existential variables (a plain datalog rule).
  bool IsDatalog() const { return ExistentialVariables().empty(); }

  /// True iff the rule is an existential TGD (has at least one ∃-variable).
  bool IsExistential() const { return !IsDatalog(); }

  bool IsSingleHead() const { return head.size() == 1; }

  /// Checks well-formedness: nonempty head, arities consistent with `sig`
  /// (callers usually build atoms through the signature so this is a
  /// debugging aid), and no variable that is both existential and in body.
  Status Validate(const Signature& sig) const;

  /// A copy with all variables renamed to fresh ids from *next_var.
  Rule RenamedApart(int32_t* next_var) const;

  std::string ToString(const Signature& sig) const;
};

}  // namespace bddfc

#endif  // BDDFC_CORE_RULE_H_
