file(REMOVE_RECURSE
  "CMakeFiles/bench_model_search.dir/bench_model_search.cc.o"
  "CMakeFiles/bench_model_search.dir/bench_model_search.cc.o.d"
  "bench_model_search"
  "bench_model_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
