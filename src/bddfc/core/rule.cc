#include "bddfc/core/rule.h"

#include <algorithm>
#include <unordered_map>

namespace bddfc {

std::vector<TermId> Rule::BodyVariables() const {
  std::vector<TermId> vars;
  for (const Atom& a : body) a.CollectVariables(&vars);
  return vars;
}

std::vector<TermId> Rule::HeadVariables() const {
  std::vector<TermId> vars;
  for (const Atom& a : head) a.CollectVariables(&vars);
  return vars;
}

std::vector<TermId> Rule::ExistentialVariables() const {
  std::vector<TermId> body_vars = BodyVariables();
  std::vector<TermId> out;
  for (TermId v : HeadVariables()) {
    if (std::find(body_vars.begin(), body_vars.end(), v) == body_vars.end()) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<TermId> Rule::FrontierVariables() const {
  std::vector<TermId> head_vars = HeadVariables();
  std::vector<TermId> out;
  for (TermId v : BodyVariables()) {
    if (std::find(head_vars.begin(), head_vars.end(), v) != head_vars.end()) {
      out.push_back(v);
    }
  }
  return out;
}

Status Rule::Validate(const Signature& sig) const {
  if (head.empty()) {
    return Status::InvalidArgument("rule '" + label + "' has empty head");
  }
  auto check_atom = [&](const Atom& a) -> Status {
    if (a.pred < 0 || a.pred >= sig.num_predicates()) {
      return Status::InvalidArgument("rule '" + label +
                                     "' uses unknown predicate id");
    }
    if (static_cast<int>(a.args.size()) != sig.arity(a.pred)) {
      return Status::InvalidArgument(
          "rule '" + label + "': atom " + a.ToString(sig) +
          " has wrong arity (expected " +
          std::to_string(sig.arity(a.pred)) + ")");
    }
    return Status::OK();
  };
  for (const Atom& a : body) BDDFC_RETURN_NOT_OK(check_atom(a));
  for (const Atom& a : head) BDDFC_RETURN_NOT_OK(check_atom(a));
  return Status::OK();
}

Rule Rule::RenamedApart(int32_t* next_var) const {
  std::unordered_map<TermId, TermId> ren;
  auto rename_atom = [&](const Atom& a) {
    Atom b;
    b.pred = a.pred;
    b.args.reserve(a.args.size());
    for (TermId t : a.args) {
      if (IsVar(t)) {
        auto it = ren.find(t);
        if (it == ren.end()) {
          it = ren.emplace(t, MakeVar((*next_var)++)).first;
        }
        b.args.push_back(it->second);
      } else {
        b.args.push_back(t);
      }
    }
    return b;
  };
  Rule out;
  out.label = label;
  out.body.reserve(body.size());
  out.head.reserve(head.size());
  for (const Atom& a : body) out.body.push_back(rename_atom(a));
  for (const Atom& a : head) out.head.push_back(rename_atom(a));
  return out;
}

std::string Rule::ToString(const Signature& sig) const {
  std::string s;
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) s += ", ";
    s += body[i].ToString(sig);
  }
  if (body.empty()) s += "true";
  s += " -> ";
  std::vector<TermId> ex = ExistentialVariables();
  if (!ex.empty()) {
    s += "exists ";
    for (size_t i = 0; i < ex.size(); ++i) {
      if (i) s += ", ";
      s += TermToString(sig, ex[i]);
    }
    s += ". ";
  }
  for (size_t i = 0; i < head.size(); ++i) {
    if (i) s += ", ";
    s += head[i].ToString(sig);
  }
  return s;
}

}  // namespace bddfc
