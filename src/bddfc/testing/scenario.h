// Randomized differential-testing scenarios (DESIGN.md §2.8).
//
// A Scenario is one (theory, instance, queries) triple over a shared
// signature — the unit the fuzzer generates, the oracles cross-check and
// the shrinker minimizes. Generation is seeded and stratified over the
// recognizer classes in classes/ (weakly-acyclic binary, guarded, linear,
// plain-datalog graph closure), so every oracle sees theories in the
// fragment it is sound for. Everything here is deterministic: the same
// seed produces byte-identical scenarios on every platform (the workload
// Rng uses an explicit splitmix64 bounded sampler).

#ifndef BDDFC_TESTING_SCENARIO_H_
#define BDDFC_TESTING_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// One generated or replayed test case. Copyable; copies share the
/// signature object (the shrinker relies on this: removing rules or facts
/// never needs new ids).
struct Scenario {
  SignaturePtr sig;
  Theory theory;
  Structure instance;
  /// Boolean CQs (the printer's ?- form carries no answer interface;
  /// oracles derive non-Boolean variants themselves).
  std::vector<ConjunctiveQuery> queries;
  /// Generator family ("acyclic-binary", "guarded", "linear",
  /// "graph-datalog") or "corpus" for replayed entries.
  std::string family;
  /// The seed this scenario was generated from (0 for corpus entries).
  uint64_t seed = 0;

  Scenario()
      : sig(std::make_shared<Signature>()), theory(sig), instance(sig) {}
  explicit Scenario(SignaturePtr s)
      : sig(std::move(s)), theory(sig), instance(sig) {}
};

/// Names of the generator families, in stratum order.
const std::vector<std::string>& ScenarioFamilies();

/// Generates the scenario of `seed`: picks a family and sizes from the
/// seed, builds the theory via workload/generators, populates a small
/// instance and attaches 1–3 Boolean queries.
Scenario GenerateScenario(uint64_t seed);

/// Serializes a scenario as a parseable .dlg program (rules, facts,
/// queries; canonical printing order).
std::string ScenarioToText(const Scenario& s);

/// Parses a .dlg program back into a scenario over a fresh signature.
/// Labeled nulls in the original become named constants (the printer's
/// documented round-trip semantics).
Result<Scenario> ParseScenario(std::string_view text,
                               std::string family = "corpus",
                               uint64_t seed = 0);

/// Deep-copies a scenario onto a fresh signature by printing and
/// reparsing. Oracles that mutate the signature (the Theorem-2 pipeline
/// adds hidden/normalized/color predicates) clone first so the scenario
/// stays pristine for the next oracle.
Result<Scenario> CloneScenario(const Scenario& s);

}  // namespace bddfc

#endif  // BDDFC_TESTING_SCENARIO_H_
