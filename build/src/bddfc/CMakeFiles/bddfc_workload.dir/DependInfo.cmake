
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bddfc/workload/generators.cc" "src/bddfc/CMakeFiles/bddfc_workload.dir/workload/generators.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_workload.dir/workload/generators.cc.o.d"
  "/root/repo/src/bddfc/workload/paper_examples.cc" "src/bddfc/CMakeFiles/bddfc_workload.dir/workload/paper_examples.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_workload.dir/workload/paper_examples.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
