// String interning: bidirectional mapping between names and dense int ids.

#ifndef BDDFC_BASE_INTERNER_H_
#define BDDFC_BASE_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bddfc {

/// Interns strings to dense, stable 32-bit ids (0, 1, 2, ...).
///
/// Used for predicate names, constant names and variable names. Lookup by
/// name is O(1) amortized; lookup by id is O(1).
class Interner {
 public:
  /// Returns the id for `name`, interning it if new.
  int32_t Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    int32_t id = static_cast<int32_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or -1 if it was never interned.
  int32_t Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? -1 : it->second;
  }

  /// Returns the name for `id`. Precondition: 0 <= id < size().
  const std::string& NameOf(int32_t id) const { return names_[id]; }

  bool Contains(std::string_view name) const { return Find(name) >= 0; }

  int32_t size() const { return static_cast<int32_t>(names_.size()); }

  /// Forgets every id >= n, so the next Intern reuses id n. Rollback hook
  /// for aborted runs (e.g. a supervised chase attempt whose invented
  /// nulls must not shift the ids of the retry). Callers must have
  /// dropped every reference to the removed ids.
  void TruncateTo(int32_t n) {
    if (n < 0 || n >= size()) return;
    for (int32_t id = n; id < size(); ++id) ids_.erase(names_[id]);
    names_.resize(static_cast<size_t>(n));
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int32_t> ids_;
};

/// Combines a hash value into a running seed (boost::hash_combine recipe).
inline void HashCombine(size_t& seed, size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a contiguous range of integral values.
template <typename It>
size_t HashRange(It begin, It end, size_t seed = 0) {
  for (It it = begin; it != end; ++it) {
    HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>()(*it));
  }
  return seed;
}

}  // namespace bddfc

#endif  // BDDFC_BASE_INTERNER_H_
