#include "bddfc/reductions/reductions.h"

#include <algorithm>
#include <string>

namespace bddfc {

namespace {

/// Largest variable index used in a theory plus one (for fresh variables).
int32_t FreshVarBase(const Theory& t) { return t.MaxVariableIndex(); }

}  // namespace

Result<HiddenQuery> HideQuery(const Theory& theory,
                              const ConjunctiveQuery& query) {
  SignaturePtr sig = theory.signature_ptr();
  HiddenQuery out(sig);
  BDDFC_ASSIGN_OR_RETURN(
      PredId f, sig->AddPredicate(sig->FreshPredicateName("f_hidden"), 2));
  out.f = f;
  for (const Rule& r : theory.rules()) {
    BDDFC_RETURN_NOT_OK(out.theory.AddRule(r));
  }
  std::vector<TermId> vars = query.Variables();
  int32_t next = FreshVarBase(theory);
  for (TermId v : vars) next = std::max(next, DecodeVar(v) + 1);
  Rule hide;
  hide.label = "hide-query";
  hide.body = query.atoms;
  if (!vars.empty()) {
    hide.head.push_back(Atom(f, {vars[0], MakeVar(next)}));
  } else {
    // Fully ground query: the head is ∃z F(z, z).
    hide.head.push_back(Atom(f, {MakeVar(next), MakeVar(next)}));
  }
  BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(hide)));
  return out;
}

Result<Theory> SingleHeadify(const Theory& theory) {
  SignaturePtr sig = theory.signature_ptr();
  Theory out(sig);
  int join_counter = 0;
  for (const Rule& r : theory.rules()) {
    if (r.head.size() == 1) {
      BDDFC_RETURN_NOT_OK(out.AddRule(r));
      continue;
    }
    if (r.IsDatalog()) {
      for (const Atom& h : r.head) {
        Rule split;
        split.body = r.body;
        split.head.push_back(h);
        split.label = r.label + "#" + std::to_string(&h - r.head.data());
        BDDFC_RETURN_NOT_OK(out.AddRule(std::move(split)));
      }
      continue;
    }
    // Multi-head TGD: join predicate over the distinct head variables.
    std::vector<TermId> head_vars = r.HeadVariables();
    BDDFC_ASSIGN_OR_RETURN(
        PredId join,
        sig->AddPredicate(
            sig->FreshPredicateName("join" + std::to_string(join_counter++)),
            static_cast<int>(head_vars.size())));
    Rule create;
    create.body = r.body;
    create.head.push_back(Atom(join, head_vars));
    create.label = r.label + "-join";
    BDDFC_RETURN_NOT_OK(out.AddRule(std::move(create)));
    for (const Atom& h : r.head) {
      Rule project;
      project.body.push_back(Atom(join, head_vars));
      project.head.push_back(h);
      project.label = r.label + "-proj";
      BDDFC_RETURN_NOT_OK(out.AddRule(std::move(project)));
    }
  }
  return out;
}

Result<Theory> BinarizeHeads(const Theory& theory) {
  SignaturePtr sig = theory.signature_ptr();
  Theory out(sig);
  int counter = 0;
  for (const Rule& r : theory.rules()) {
    if (!r.IsExistential()) {
      BDDFC_RETURN_NOT_OK(out.AddRule(r));
      continue;
    }
    std::vector<TermId> existentials = r.ExistentialVariables();
    std::vector<TermId> body_vars = r.BodyVariables();
    // Frontier variables used in the head.
    std::vector<TermId> frontier;
    for (TermId v : r.HeadVariables()) {
      if (std::find(body_vars.begin(), body_vars.end(), v) !=
          body_vars.end()) {
        frontier.push_back(v);
      }
    }
    if (frontier.size() > 1) {
      return Status::FailedPrecondition(
          "BinarizeHeads needs at most one frontier variable per TGD head "
          "(Theorem 3 form); rule '" + r.label + "' has " +
          std::to_string(frontier.size()));
    }
    if (r.head.size() == 1 && r.head[0].args.size() <= 2 &&
        existentials.size() <= 1) {
      BDDFC_RETURN_NOT_OK(out.AddRule(r));  // already binary-headed
      continue;
    }
    if (body_vars.empty()) {
      return Status::FailedPrecondition(
          "BinarizeHeads needs a nonempty body (rule '" + r.label + "')");
    }
    TermId y = frontier.empty() ? body_vars[0] : frontier[0];
    // One binary TGD per existential variable...
    std::vector<Atom> collectors;
    for (TermId z : existentials) {
      BDDFC_ASSIGN_OR_RETURN(
          PredId rz,
          sig->AddPredicate(
              sig->FreshPredicateName("rphi" + std::to_string(counter++)),
              2));
      Rule tgd;
      tgd.body = r.body;
      tgd.head.push_back(Atom(rz, {y, z}));
      tgd.label = r.label + "-bin";
      BDDFC_RETURN_NOT_OK(out.AddRule(std::move(tgd)));
      collectors.push_back(Atom(rz, {y, z}));
    }
    // ... plus the datalog rule reassembling Φ(y, z̄).
    for (const Atom& h : r.head) {
      Rule assemble;
      assemble.body = r.body;
      for (const Atom& c : collectors) assemble.body.push_back(c);
      assemble.head.push_back(h);
      assemble.label = r.label + "-asm";
      BDDFC_RETURN_NOT_OK(out.AddRule(std::move(assemble)));
    }
  }
  return out;
}

Result<Theory> NormalizeSpade5(const Theory& theory) {
  SignaturePtr sig = theory.signature_ptr();
  Theory out(sig);
  int counter = 0;

  auto fresh_tgp = [&](const std::string& stem) -> Result<PredId> {
    return sig->AddPredicate(
        sig->FreshPredicateName(stem + std::to_string(counter++)), 2);
  };

  for (const Rule& r : theory.rules()) {
    if (!r.IsExistential()) {
      BDDFC_RETURN_NOT_OK(out.AddRule(r));
      continue;
    }
    if (r.head.size() != 1) {
      return Status::FailedPrecondition(
          "NormalizeSpade5 needs single-head TGDs; apply SingleHeadify "
          "first (rule '" + r.label + "')");
    }
    const Atom& h = r.head[0];
    if (h.args.size() > 2) {
      return Status::FailedPrecondition(
          "NormalizeSpade5 needs heads of arity <= 2; apply BinarizeHeads "
          "first (rule '" + r.label + "')");
    }
    std::vector<TermId> existentials = r.ExistentialVariables();
    std::vector<TermId> body_vars = r.BodyVariables();
    if (body_vars.empty()) {
      return Status::FailedPrecondition(
          "NormalizeSpade5 needs nonempty bodies (rule '" + r.label + "')");
    }

    if (existentials.size() == 2) {
      // Head R(z1, z2): chain two auxiliary TGPs (the §5.3-style trick).
      TermId z1 = h.args[0], z2 = h.args[1];
      BDDFC_ASSIGN_OR_RETURN(PredId a1, fresh_tgp("aux"));
      BDDFC_ASSIGN_OR_RETURN(PredId a2, fresh_tgp("aux"));
      Rule first;
      first.body = r.body;
      first.head.push_back(Atom(a1, {body_vars[0], z1}));
      first.label = r.label + "-n1";
      BDDFC_RETURN_NOT_OK(out.AddRule(std::move(first)));
      Rule second;
      second.body.push_back(Atom(a1, {body_vars[0], z1}));
      second.head.push_back(Atom(a2, {z1, z2}));
      second.label = r.label + "-n2";
      BDDFC_RETURN_NOT_OK(out.AddRule(std::move(second)));
      Rule datalog;
      datalog.body.push_back(Atom(a2, {z1, z2}));
      datalog.head.push_back(h);
      datalog.label = r.label + "-nd";
      BDDFC_RETURN_NOT_OK(out.AddRule(std::move(datalog)));
      continue;
    }

    // Single existential variable z.
    TermId z = existentials[0];
    // Anchor: the frontier variable occurring in the head, else the first
    // body variable (heads like u(z), R(z, z), R(c, z) have none).
    bool anchor_found = false;
    TermId anchor = body_vars[0];
    for (TermId t : h.args) {
      if (IsVar(t) && t != z) {
        anchor = t;
        anchor_found = true;
      }
    }
    (void)anchor_found;
    BDDFC_ASSIGN_OR_RETURN(PredId aux, fresh_tgp("tgp"));
    Rule tgd;
    tgd.body = r.body;
    tgd.head.push_back(Atom(aux, {anchor, z}));
    tgd.label = r.label + "-n";
    BDDFC_RETURN_NOT_OK(out.AddRule(std::move(tgd)));
    // Datalog projection back to the original head. Its variables are among
    // {anchor, z} plus constants, so the body Atom(aux, ...) binds them all.
    Rule datalog;
    datalog.body.push_back(Atom(aux, {anchor, z}));
    datalog.head.push_back(h);
    datalog.label = r.label + "-p";
    BDDFC_RETURN_NOT_OK(out.AddRule(std::move(datalog)));
  }
  return out;
}

namespace {

/// Builds the ternary chain for one wide atom. Returns the replacement
/// atoms; `next_var` supplies fresh link variables.
std::vector<Atom> ChainAtoms(const std::vector<PredId>& cells, PredId final_p,
                             const std::vector<TermId>& args,
                             int32_t* next_var) {
  std::vector<Atom> out;
  TermId prev = -1;
  for (size_t i = 0; i < cells.size(); ++i) {
    TermId link = MakeVar((*next_var)++);
    if (i == 0) {
      out.push_back(Atom(cells[i], {args[0], args[1], link}));
    } else {
      out.push_back(Atom(cells[i], {prev, args[i + 1], link}));
    }
    prev = link;
  }
  out.push_back(Atom(final_p, {prev, args.back()}));
  return out;
}

}  // namespace

Result<TernaryReduction> TernarizeTheory(const Theory& theory) {
  SignaturePtr sig = theory.signature_ptr();
  TernaryReduction out(sig);

  // Chain predicates per wide predicate.
  std::unordered_map<PredId, ChainEncoding> enc;
  for (PredId p = 0; p < sig->num_predicates(); ++p) {
    int k = sig->arity(p);
    if (k <= 3) continue;
    std::vector<PredId> cells;
    for (int i = 0; i + 2 < k; ++i) {
      BDDFC_ASSIGN_OR_RETURN(
          PredId cell,
          sig->AddPredicate(sig->FreshPredicateName(
                                sig->PredicateName(p) + "_c" +
                                std::to_string(i)),
                            3));
      cells.push_back(cell);
    }
    BDDFC_ASSIGN_OR_RETURN(
        PredId fin, sig->AddPredicate(
                        sig->FreshPredicateName(sig->PredicateName(p) + "_t"),
                        2));
    ChainEncoding encoding;
    encoding.cells = cells;
    encoding.final_pred = fin;
    out.chains.emplace(p, encoding);
    enc.emplace(p, std::move(encoding));
  }
  if (enc.empty()) {
    for (const Rule& r : theory.rules()) {
      BDDFC_RETURN_NOT_OK(out.theory.AddRule(r));
    }
    return out;
  }

  for (const Rule& r : theory.rules()) {
    if (r.head.size() != 1) {
      return Status::FailedPrecondition(
          "TernarizeTheory needs single-head rules (rule '" + r.label +
          "'); apply SingleHeadify first");
    }
    int32_t next_var = FreshVarBase(theory);

    // Rewrite the body: wide atoms become chains over fresh ∀-variables.
    std::vector<Atom> body;
    for (const Atom& a : r.body) {
      auto it = enc.find(a.pred);
      if (it == enc.end()) {
        body.push_back(a);
        continue;
      }
      for (Atom& c : ChainAtoms(it->second.cells, it->second.final_pred,
                                a.args, &next_var)) {
        body.push_back(std::move(c));
      }
    }

    const Atom& h = r.head[0];
    auto it = enc.find(h.pred);
    if (it == enc.end()) {
      Rule nr;
      nr.body = std::move(body);
      nr.head.push_back(h);
      nr.label = r.label;
      BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(nr)));
      continue;
    }

    // Wide head: cascade of rules, each creating the next list cell
    // existentially (the Theorem 4 example's shape).
    std::vector<Atom> chain = ChainAtoms(it->second.cells,
                                         it->second.final_pred, h.args,
                                         &next_var);
    std::vector<Atom> accumulated = body;
    for (size_t i = 0; i < chain.size(); ++i) {
      Rule step;
      step.body = accumulated;
      step.head.push_back(chain[i]);
      step.label = r.label + "-t" + std::to_string(i);
      BDDFC_RETURN_NOT_OK(out.theory.AddRule(std::move(step)));
      accumulated.push_back(chain[i]);
    }
  }
  return out;
}

Structure TernarizeInstance(const TernaryReduction& reduction,
                            const Structure& instance) {
  Structure out(instance.signature_ptr());
  Signature& sig = out.mutable_sig();
  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    auto it = reduction.chains.find(p);
    if (it == reduction.chains.end()) {
      out.AddFact(p, row);
      return;
    }
    const ChainEncoding& enc = it->second;
    TermId prev = -1;
    for (size_t i = 0; i < enc.cells.size(); ++i) {
      TermId link = sig.AddNull("cell");
      if (i == 0) {
        out.AddFact(enc.cells[i], {row[0], row[1], link});
      } else {
        out.AddFact(enc.cells[i], {prev, row[i + 1], link});
      }
      prev = link;
    }
    out.AddFact(enc.final_pred, {prev, row.back()});
  });
  return out;
}

}  // namespace bddfc
