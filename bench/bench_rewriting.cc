// E3 — UCQ rewriting: size, saturation depth (the k_Φ certificate) and κ
// versus query size on BDD theories, pruned vs unpruned. Expected shapes:
// on the linear successor theory the minimized rewriting of a k-path
// collapses to the single edge while generated-query counts grow with k —
// and homomorphic-subsumption pruning keeps the kept set far smaller than
// the key-dedup-only exploration; the transitivity theory never saturates
// (not BDD) and hits its budget at every k.

#include "bench_common.h"

#include "bddfc/rewrite/rewriter.h"
#include "bddfc/workload/generators.h"

namespace {

using namespace bddfc;

Program Successor() {
  return std::move(ParseProgram("e(X, Y) -> exists Z: e(Y, Z).")).ValueOrDie();
}

Program SuccessorWithSource() {
  return std::move(ParseProgram(R"(
    u(X) -> exists Z: e(X, Z).
    e(X, Y) -> u(Y).
  )")).ValueOrDie();
}

Program Transitivity() {
  return std::move(ParseProgram("e(X, Y), e(Y, Z) -> e(X, Z).")).ValueOrDie();
}

RewriteOptions TableOptions(bool prune) {
  RewriteOptions opts;
  opts.max_depth = 12;
  opts.max_queries = 3000;
  opts.prune_subsumed = prune;
  return opts;
}

void PrintTable() {
  bddfc_bench::Banner("E3", "rewriting size / depth vs query size, "
                            "pruned vs unpruned");
  std::printf("%-16s %-4s %-10s %-10s %-9s %-8s %-9s %-9s %-8s\n", "theory",
              "k", "gen_prune", "gen_seed", "minimized", "depth", "pruned",
              "homchk", "status");
  struct Row {
    const char* name;
    Program p;
  };
  Row rows[] = {{"successor", Successor()},
                {"succ+source", SuccessorWithSource()},
                {"transitivity", Transitivity()}};
  for (Row& row : rows) {
    PredId e = std::move(row.p.theory.sig().FindPredicate("e")).ValueOrDie();
    for (int k = 1; k <= 6; ++k) {
      RewriteResult pruned =
          RewriteQuery(row.p.theory, PathQuery(e, k), TableOptions(true));
      RewriteResult seed =
          RewriteQuery(row.p.theory, PathQuery(e, k), TableOptions(false));
      std::printf("%-16s %-4d %-10zu %-10zu %-9zu %-8zu %-9zu %-9zu %-8s\n",
                  row.name, k, pruned.queries_generated,
                  seed.queries_generated, pruned.rewriting.size(),
                  pruned.depth_reached,
                  pruned.stats.TotalSubsumptionPruned(),
                  pruned.stats.hom_checks,
                  pruned.status.ok() ? "saturated" : "budget");
    }
  }

  std::printf("\nkappa (§3.3) per theory:\n");
  for (Row& row : rows) {
    KappaResult kr = ComputeKappa(row.p.theory);
    std::printf("  %-16s kappa=%-3d (%s)\n", row.name, kr.kappa,
                kr.status.ok() ? "exact" : "budgeted");
  }
}

void ExportCounters(benchmark::State& state, const RewriteResult& r) {
  state.counters["queries_generated"] =
      static_cast<double>(r.queries_generated);
  state.counters["disjuncts"] = static_cast<double>(r.rewriting.size());
  state.counters["candidates"] =
      static_cast<double>(r.stats.TotalCandidates());
  state.counters["key_deduped"] =
      static_cast<double>(r.stats.TotalKeyDeduped());
  state.counters["subsumption_pruned"] =
      static_cast<double>(r.stats.TotalSubsumptionPruned());
  state.counters["hom_checks"] = static_cast<double>(r.stats.hom_checks);
  state.counters["hom_checks_skipped"] =
      static_cast<double>(r.stats.hom_checks_skipped);
}

/// range(0) = path length k, range(1) = prune_subsumed.
void BM_RewritePath(benchmark::State& state) {
  Program p = SuccessorWithSource();
  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, static_cast<int>(state.range(0)));
  RewriteOptions opts;
  opts.prune_subsumed = state.range(1) != 0;
  RewriteResult last;
  for (auto _ : state) {
    last = RewriteQuery(p.theory, q, opts);
    benchmark::DoNotOptimize(last.rewriting.size());
  }
  ExportCounters(state, last);
}
BENCHMARK(BM_RewritePath)
    ->ArgsProduct({{1, 2, 3, 4, 5}, {0, 1}})
    ->ArgNames({"k", "prune"});

/// The workload where subsumption pruning changes the complexity class:
/// under transitive closure every Boolean k-path candidate folds into the
/// edge disjunct, so the pruned engine saturates after a handful of
/// queries while the blind engine always runs to its query budget.
void BM_RewritePathTransitive(benchmark::State& state) {
  Program p = Transitivity();
  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, static_cast<int>(state.range(0)));
  RewriteOptions opts = TableOptions(state.range(1) != 0);
  RewriteResult last;
  for (auto _ : state) {
    last = RewriteQuery(p.theory, q, opts);
    benchmark::DoNotOptimize(last.rewriting.size());
  }
  ExportCounters(state, last);
}
BENCHMARK(BM_RewritePathTransitive)
    ->ArgsProduct({{2, 4, 6}, {0, 1}})
    ->ArgNames({"k", "prune"});

/// range(0) = rules, range(1) = threads.
void BM_ProbeBddLinear(benchmark::State& state) {
  auto sig = std::make_shared<Signature>();
  Theory t = RandomLinearTheory(sig, 3, static_cast<int>(state.range(0)), 11);
  RewriteOptions opts;
  opts.threads = static_cast<size_t>(state.range(1));
  BddProbeResult last;
  for (auto _ : state) {
    last = ProbeBdd(t, opts);
    benchmark::DoNotOptimize(last.certified);
  }
  state.counters["queries_generated"] =
      static_cast<double>(last.queries_generated);
  state.counters["subsumption_pruned"] =
      static_cast<double>(last.stats.TotalSubsumptionPruned());
  state.counters["hom_checks"] = static_cast<double>(last.stats.hom_checks);
  state.counters["hom_checks_skipped"] =
      static_cast<double>(last.stats.hom_checks_skipped);
}
BENCHMARK(BM_ProbeBddLinear)
    ->ArgsProduct({{2, 4, 8}, {1, 4}})
    ->ArgNames({"rules", "threads"});

void BM_DerivationDepth(benchmark::State& state) {
  Program p = std::move(ParseProgram(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(a, b).
  )")).ValueOrDie();
  PredId e = std::move(p.theory.sig().FindPredicate("e")).ValueOrDie();
  ConjunctiveQuery q = PathQuery(e, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DerivationDepth(p.theory, p.instance, q, 24));
  }
}
BENCHMARK(BM_DerivationDepth)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
