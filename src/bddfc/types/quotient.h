// Quotient structures M_n(C) (§2.3, Def. 5).
//
// Given a partition of C's domain (by ≡_n or a refinement), the quotient has
// the classes as elements and the minimal relations making the projection
// q_n a homomorphism (the joint-witness reading of Def. 5 — see DESIGN.md
// §2.5 for why the per-position reading is not used). Named constants are
// always singleton classes and keep their identity; each class of labeled
// nulls becomes a fresh labeled null.

#ifndef BDDFC_TYPES_QUOTIENT_H_
#define BDDFC_TYPES_QUOTIENT_H_

#include <unordered_map>

#include "bddfc/core/structure.h"
#include "bddfc/types/ptype.h"

namespace bddfc {

/// The quotient structure together with the projection map q_n.
struct Quotient {
  Structure structure;
  /// q_n: element of C → element of M_n(C).
  std::unordered_map<TermId, TermId> projection;
  /// One representative of C per class element of M_n(C).
  std::unordered_map<TermId, TermId> representative;

  explicit Quotient(SignaturePtr sig) : structure(std::move(sig)) {}

  TermId Project(TermId e) const {
    auto it = projection.find(e);
    return it == projection.end() ? -1 : it->second;
  }
};

/// Builds M(C) for the given partition. The quotient shares C's signature
/// (class elements are fresh nulls in it).
Quotient BuildQuotient(const Structure& c, const TypePartition& partition);

/// Lemma 1 helper: checks that `finer` refines `coarser` (every class of
/// `finer` is contained in one class of `coarser`). Both partitions must be
/// over the same element list.
bool IsRefinementOf(const TypePartition& finer, const TypePartition& coarser);

}  // namespace bddfc

#endif  // BDDFC_TYPES_QUOTIENT_H_
