# Empty dependencies file for non_fc_witness.
# This may be replaced when dependencies are built.
