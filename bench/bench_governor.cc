// E13 — Resource-governor overhead.
//
// The governor's promise is "always on, never noticed": engines run a
// cooperative CheckPoint per round/level plus one strided probe every 64
// enumeration steps, and byte accounting is two relaxed atomic ops per
// fact. This experiment measures the end-to-end cost of that contract by
// running the same chase workloads (the E1 shapes: Example 9's
// exponential tree and the E1b generator join load) three ways:
//
//   bare      — no ExecutionContext at all (the pre-governor code path)
//   governed  — a context with a far deadline + a large byte budget, so
//               every check and every charge is live but nothing trips
//
// and reporting the best-of-reps thread-CPU delta. The acceptance bar is < 2%
// on these workloads; the measured numbers are recorded in EXPERIMENTS.md.
// The google-benchmark cases below export the governor counters
// (peak_accounted_bytes, deadline_slack_ms, cancel_checks) into the JSON
// report alongside the timings.

#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <cmath>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/chase/chase.h"
#include "bddfc/workload/generators.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

/// Thread CPU time: on a loaded shared machine, wall clock charges a
/// multi-millisecond preemption to whichever mode was unlucky, drowning a
/// sub-2% effect. CPU time plus a min-of-reps estimator is robust to it.
double ThreadCpuMs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

double TimeChaseMs(const Program& p, size_t max_rounds,
                   ExecutionContext* ctx, size_t* facts) {
  ChaseOptions opts;
  opts.max_rounds = max_rounds;
  opts.max_facts = 5000000;
  opts.context = ctx;
  double t0 = ThreadCpuMs();
  ChaseResult r = RunChase(p.theory, p.instance, opts);
  double ms = ThreadCpuMs() - t0;
  *facts = r.structure.NumFacts();
  return ms;
}

/// A governed-but-never-tripping context: deadline far away, budget huge,
/// so every cooperative check and byte charge is exercised.
ExecutionContext* MakeFarContext(ExecutionContext* ctx) {
  ctx->SetDeadlineAfterMs(1e9);
  ctx->SetMemoryLimitBytes(size_t{1} << 40);
  return ctx;
}

/// Minimum over reps: the best observation is the one least disturbed by
/// the machine; any positive delta that survives it is real cost.
double Best(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

/// Median of paired per-rep deltas: each rep runs bare and governed
/// back-to-back, so slow drift (allocator state, frequency, co-tenants)
/// hits both sides of a pair and cancels in the difference.
double MedianPairedDelta(const std::vector<double>& bare,
                         const std::vector<double>& gov) {
  std::vector<double> deltas(bare.size());
  for (size_t i = 0; i < bare.size(); ++i) deltas[i] = gov[i] - bare[i];
  std::sort(deltas.begin(), deltas.end());
  return deltas[deltas.size() / 2];
}

struct OverheadRow {
  const char* name;
  Program program;
  size_t max_rounds;
};

void PrintOverheadTable() {
  bddfc_bench::Banner("E13", "resource-governor overhead (bare vs governed)");
  std::printf("%-14s %-8s %-8s %-12s %-12s %-10s\n", "workload", "rounds",
              "facts", "bare ms", "governed ms", "overhead");

  auto tc = ParseProgram(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(X, Y) -> exists W: e(Y, W).
    e(a, b).
  )");
  OverheadRow rows[] = {
      {"example9", Example9(), 12},
      {"example1", Example1(), 400},
      {"tc-chain", std::move(tc).ValueOrDie(), 48},
  };
  const int kReps = 31;
  for (OverheadRow& row : rows) {
    std::vector<double> bare_ms, gov_ms;
    size_t facts = 0;
    // One warm-up pair, then interleave the two modes so frequency
    // scaling, allocator state and cache effects hit both equally; the
    // paired-delta median below cancels what is left.
    for (int rep = -1; rep < kReps; ++rep) {
      double b = TimeChaseMs(row.program, row.max_rounds, nullptr, &facts);
      ExecutionContext ctx;
      double g = TimeChaseMs(row.program, row.max_rounds,
                             MakeFarContext(&ctx), &facts);
      if (rep < 0) continue;
      bare_ms.push_back(b);
      gov_ms.push_back(g);
    }
    double bare = Best(bare_ms);
    double delta = MedianPairedDelta(bare_ms, gov_ms);
    std::printf("%-14s %-8zu %-8zu %-12.2f %-12.2f %+.2f%%\n", row.name,
                row.max_rounds, facts, bare, bare + delta,
                100.0 * delta / std::max(bare, 1e-9));
  }
  std::printf("acceptance bar: < 2%% overhead on these workloads\n");
}

void ExportGovernorCounters(benchmark::State& state, const ChaseResult& r) {
  state.counters["facts"] = static_cast<double>(r.structure.NumFacts());
  state.counters["peak_accounted_bytes"] =
      static_cast<double>(r.report.peak_bytes);
  state.counters["deadline_slack_ms"] =
      std::isfinite(r.report.deadline_slack_ms) ? r.report.deadline_slack_ms
                                                : 0.0;
  state.counters["cancel_checks"] =
      static_cast<double>(r.report.cancel_checks);
}

void BM_ChaseBare(benchmark::State& state) {
  Program p = Example9();
  ChaseOptions opts;
  opts.max_rounds = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportGovernorCounters(state, r);
  }
}
BENCHMARK(BM_ChaseBare)->Arg(8)->Arg(10)->Arg(12);

void BM_ChaseGoverned(benchmark::State& state) {
  Program p = Example9();
  for (auto _ : state) {
    ExecutionContext ctx;
    ChaseOptions opts;
    opts.max_rounds = static_cast<size_t>(state.range(0));
    opts.context = MakeFarContext(&ctx);
    ChaseResult r = RunChase(p.theory, p.instance, opts);
    benchmark::DoNotOptimize(r.structure.NumFacts());
    ExportGovernorCounters(state, r);
  }
}
BENCHMARK(BM_ChaseGoverned)->Arg(8)->Arg(10)->Arg(12);

void BM_CheckPoint(benchmark::State& state) {
  // Raw cost of one full CheckPoint with a live deadline: a steady_clock
  // read plus a few relaxed loads.
  ExecutionContext ctx;
  ctx.SetDeadlineAfterMs(1e9);
  ctx.SetMemoryLimitBytes(size_t{1} << 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.CheckPoint("bench").ok());
  }
}
BENCHMARK(BM_CheckPoint);

void BM_ShouldStopStride(benchmark::State& state) {
  // Strided probe: 63 of 64 calls are a single relaxed load.
  ExecutionContext ctx;
  ctx.SetDeadlineAfterMs(1e9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ShouldStop("bench"));
  }
}
BENCHMARK(BM_ShouldStopStride);

}  // namespace

BDDFC_BENCH_MAIN(PrintOverheadTable)
