// Validates a Chrome trace_event JSON file (the shape written by
// `bddfc --trace-out` / `bddfc_fuzz --trace-out`). CI runs it on the
// pipeline's trace artifact so a regression in the exporter (unbalanced
// spans, time going backwards, broken escaping) fails the build instead
// of producing a file chrome://tracing silently refuses to load.
//
// Usage:
//   trace_check <trace.json> [--require=SPAN_NAME]...
//
// Checks:
//   * the file is well-formed JSON: an object with a "traceEvents" array
//     whose entries carry name (string), ph ("B"/"E"), ts (number) and
//     tid (number);
//   * per tid, ts is non-decreasing in file order;
//   * per tid, B/E events balance like a bracket language, with matching
//     names (duration events in trace_event format are per-thread LIFO);
//   * each --require=NAME names at least one recorded span.
//
// Exit status: 0 = valid, 1 = invalid, 2 = usage / IO error.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: just enough of RFC 8259 for trace files. Numbers
// are kept as doubles; no \u surrogate pairing (the exporter never emits
// non-ASCII names).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the whole input as one value; false on any syntax error, with
  /// error() describing the failure and its byte offset.
  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing data after the value");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, JsonValue::Kind kind, bool b, JsonValue* out) {
    size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return Fail("invalid literal");
    pos_ += n;
    out->kind = kind;
    out->b = b;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return Fail("expected '\"'");
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Fail("bad \\u escape digit");
          }
          // Validation only: a replacement byte keeps names comparable.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a number");
    try {
      out->num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("unparsable number");
    }
    out->kind = JsonValue::kNumber;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    char c = s_[pos_];
    if (c == 'n') return Literal("null", JsonValue::kNull, false, out);
    if (c == 't') return Literal("true", JsonValue::kBool, true, out);
    if (c == 'f') return Literal("false", JsonValue::kBool, false, out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber(out);
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue item;
        SkipWs();
        if (!ParseValue(&item, depth + 1)) return false;
        out->items.push_back(std::move(item));
        SkipWs();
        if (pos_ >= s_.size()) return Fail("unterminated array");
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != ':') return Fail("expected ':'");
        ++pos_;
        SkipWs();
        JsonValue val;
        if (!ParseValue(&val, depth + 1)) return false;
        out->fields.emplace_back(std::move(key), std::move(val));
        SkipWs();
        if (pos_ >= s_.size()) return Fail("unterminated object");
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    return Fail("unexpected character");
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Trace validation.
// ---------------------------------------------------------------------------

int Usage() {
  std::fprintf(stderr,
               "usage: trace_check <trace.json> [--require=SPAN_NAME]...\n"
               "exit codes: 0 valid, 1 invalid, 2 usage/IO error\n");
  return 2;
}

int Invalid(size_t index, const std::string& what) {
  std::fprintf(stderr, "invalid trace: event %zu: %s\n", index, what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--require=", 10) == 0) {
      if (argv[i][10] == '\0') return Usage();
      required.push_back(argv[i] + 10);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr) return Usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path);
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  JsonParser parser(text);
  if (!parser.Parse(&root)) {
    std::fprintf(stderr, "invalid trace: not well-formed JSON: %s\n",
                 parser.error().c_str());
    return 1;
  }
  if (root.kind != JsonValue::kObject) {
    std::fprintf(stderr, "invalid trace: top level is not an object\n");
    return 1;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    std::fprintf(stderr, "invalid trace: missing \"traceEvents\" array\n");
    return 1;
  }

  // Per-tid state: last timestamp seen and the open-span name stack.
  std::map<double, double> last_ts;
  std::map<double, std::vector<std::string>> open;
  std::map<std::string, size_t> spans_by_name;

  for (size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& e = events->items[i];
    if (e.kind != JsonValue::kObject) return Invalid(i, "not an object");
    const JsonValue* name = e.Find("name");
    const JsonValue* ph = e.Find("ph");
    const JsonValue* ts = e.Find("ts");
    const JsonValue* tid = e.Find("tid");
    if (name == nullptr || name->kind != JsonValue::kString) {
      return Invalid(i, "missing string \"name\"");
    }
    if (ph == nullptr || ph->kind != JsonValue::kString) {
      return Invalid(i, "missing string \"ph\"");
    }
    if (ts == nullptr || ts->kind != JsonValue::kNumber) {
      return Invalid(i, "missing numeric \"ts\"");
    }
    if (tid == nullptr || tid->kind != JsonValue::kNumber) {
      return Invalid(i, "missing numeric \"tid\"");
    }
    if (ph->str != "B" && ph->str != "E") {
      return Invalid(i, "ph is '" + ph->str + "', expected 'B' or 'E'");
    }

    // Monotone per-thread timestamps, in file order.
    auto [it, fresh] = last_ts.emplace(tid->num, ts->num);
    if (!fresh) {
      if (ts->num < it->second) {
        return Invalid(i, "ts goes backwards on tid " +
                              std::to_string(tid->num) + " (" +
                              std::to_string(ts->num) + " after " +
                              std::to_string(it->second) + ")");
      }
      it->second = ts->num;
    }

    // Balanced, name-matched B/E per thread.
    std::vector<std::string>& stack = open[tid->num];
    if (ph->str == "B") {
      stack.push_back(name->str);
      ++spans_by_name[name->str];
    } else if (stack.empty()) {
      return Invalid(i, "'E' for \"" + name->str + "\" with no open span");
    } else if (stack.back() != name->str) {
      return Invalid(i, "'E' for \"" + name->str + "\" but innermost open "
                        "span is \"" + stack.back() + "\"");
    } else {
      stack.pop_back();
    }
  }

  for (const auto& [tid, stack] : open) {
    if (!stack.empty()) {
      std::fprintf(stderr,
                   "invalid trace: tid %g ends with %zu unclosed span(s), "
                   "innermost \"%s\"\n",
                   tid, stack.size(), stack.back().c_str());
      return 1;
    }
  }

  int rc = 0;
  for (const std::string& want : required) {
    if (spans_by_name.find(want) == spans_by_name.end()) {
      std::fprintf(stderr, "invalid trace: no span named \"%s\"\n",
                   want.c_str());
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("ok: %zu events, %zu distinct span names, %zu threads\n",
                events->items.size(), spans_by_name.size(), last_ts.size());
  }
  return rc;
}
