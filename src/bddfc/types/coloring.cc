#include "bddfc/types/coloring.h"

#include <algorithm>
#include <map>
#include <string>

#include "bddfc/chase/skeleton.h"
#include "bddfc/classes/vtdag.h"

namespace bddfc {

namespace {

/// Canonical encoding of C ↾ (P(e) ∪ C_con) with e and its parent
/// anonymized ("E"/"P") and constants by name. Equal strings <=> isomorphic
/// restrictions (with the P-roles distinguished).
std::string LocalIsoKey(const Structure& c, TermId e, TermId parent) {
  auto name = [&](TermId t) -> std::string {
    if (t == e) return "@E";
    if (t == parent) return "@P";
    if (!c.sig().IsNull(t)) return "c" + std::to_string(t);
    return "";  // outside P(e) ∪ C_con
  };
  std::vector<std::string> atoms;
  c.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    if (c.sig().IsColor(p)) return;
    std::string s = std::to_string(p) + "(";
    for (TermId t : row) {
      std::string nm = name(t);
      if (nm.empty()) return;  // atom leaves the restriction
      s += nm + ",";
    }
    atoms.push_back(s + ")");
  });
  std::sort(atoms.begin(), atoms.end());
  std::string out;
  for (const auto& a : atoms) out += a + ";";
  return out;
}

}  // namespace

Result<Coloring> NaturalColoring(const Structure& c, int m) {
  SkeletonAnalysis forest = AnalyzeSkeleton(c);
  if (!forest.is_forest) {
    return Status::FailedPrecondition(
        "natural coloring requires the nulls of C to form a forest");
  }

  Coloring out(c.signature_ptr());
  c.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    out.colored.AddFact(p, row);
  });
  for (TermId e : c.Domain()) out.colored.AddDomainElement(e);

  // Lightness table: canonical local-iso string -> id.
  std::map<std::string, int> lightness_of;
  // (hue, lightness) -> color predicate.
  std::map<std::pair<int, int>, PredId> color_pred;
  int hue_period = m + 2;  // P_m(e) reaches ancestors within m+1 steps

  for (TermId e : c.Domain()) {
    int hue;
    TermId parent = -1;
    std::string iso_key;
    if (!c.sig().IsNull(e)) {
      // Constants: P(e) = {e}; their name makes the local type unique.
      hue = 0;
      iso_key = "const:" + std::to_string(e);
    } else {
      auto dit = forest.depth.find(e);
      hue = 1 + (dit == forest.depth.end() ? 0 : dit->second % hue_period);
      auto pit = forest.parent.find(e);
      if (pit != forest.parent.end()) parent = pit->second;
      iso_key = LocalIsoKey(c, e, parent);
    }
    auto [lit, lnew] =
        lightness_of.emplace(iso_key, static_cast<int>(lightness_of.size()));
    (void)lnew;
    int lightness = lit->second;
    auto key = std::make_pair(hue, lightness);
    auto cit = color_pred.find(key);
    if (cit == color_pred.end()) {
      PredId k = out.colored.mutable_sig().AddColorPredicate(hue, lightness);
      cit = color_pred.emplace(key, k).first;
      out.color_predicates.push_back(k);
    }
    out.colored.AddFact(cit->second, {e});
    out.color_of.emplace(e, cit->second);
    out.num_hues = std::max(out.num_hues, hue + 1);
  }
  out.num_lightnesses = static_cast<int>(lightness_of.size());

  for (PredId p = 0; p < c.sig().num_predicates(); ++p) {
    if (!c.sig().IsColor(p)) out.base_predicates.push_back(p);
  }
  // Exclude colors added concurrently by this very call (already excluded:
  // the loop above ran over the pre-coloring predicate count).
  return out;
}

bool IsNaturalColoring(const Coloring& coloring, const Structure& c, int m) {
  const Signature& sig = coloring.colored.sig();
  // Condition 1: distinct hues within P_m(e) (excluding e itself).
  for (TermId e : c.Domain()) {
    if (!sig.IsNull(e)) continue;
    auto it = coloring.color_of.find(e);
    if (it == coloring.color_of.end()) return false;
    int hue_e = sig.predicate(it->second).hue;
    for (TermId d : PkSet(c, e, m)) {
      if (d == e || !sig.IsNull(d)) continue;
      auto dit = coloring.color_of.find(d);
      if (dit == coloring.color_of.end()) return false;
      if (sig.predicate(dit->second).hue == hue_e) return false;
    }
  }
  // Condition 2: same color => isomorphic C ↾ (P(e) ∪ C_con).
  SkeletonAnalysis forest = AnalyzeSkeleton(c);
  std::map<PredId, std::string> seen;
  for (TermId e : c.Domain()) {
    auto it = coloring.color_of.find(e);
    if (it == coloring.color_of.end()) return false;
    TermId parent = -1;
    auto pit = forest.parent.find(e);
    if (pit != forest.parent.end()) parent = pit->second;
    std::string key = c.sig().IsNull(e)
                          ? LocalIsoKey(c, e, parent)
                          : "const:" + std::to_string(e);
    auto [sit, inserted] = seen.emplace(it->second, key);
    if (!inserted && sit->second != key) return false;
  }
  return true;
}

}  // namespace bddfc
