// Brute-force finite model search over tiny domains.
//
// Enumerates all structures over D's constants plus up to k fresh elements
// and reports one that models T, contains D, and (optionally) avoids a
// query. Exponential — intended for validating the pipeline on micro
// inputs, exploring the paper's examples (e.g. Example 1's 3-cycle M′),
// and demonstrating non-FC witnesses: for the §5.5 theory, every finite
// model satisfies Φ although the chase does not (the search proves it
// exhaustively per domain size).

#ifndef BDDFC_FINITEMODEL_MODEL_SEARCH_H_
#define BDDFC_FINITEMODEL_MODEL_SEARCH_H_

#include <optional>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

struct ModelSearchOptions {
  /// Fresh elements added on top of D's constants, tried 0..max in order.
  int max_extra_elements = 2;
  /// Cap on enumerated candidate structures.
  size_t max_structures = size_t{1} << 22;
  /// Resource governor (not owned; may be null): strided deadline/memory/
  /// cancellation probes inside the candidate enumeration; max_structures
  /// trips are recorded on it as ResourceKind::kStructures.
  ExecutionContext* context = nullptr;
};

struct ModelSearchResult {
  /// OK even when nothing found; ResourceExhausted when the enumeration
  /// space exceeded max_structures.
  Status status = Status::OK();
  bool found = false;
  std::optional<Structure> model;
  size_t structures_checked = 0;
};

/// Searches for M ⊇ D with M ⊨ theory and (if `avoid` != nullptr)
/// M ⊭ *avoid.
ModelSearchResult FindFiniteModel(const Theory& theory,
                                  const Structure& instance,
                                  const ConjunctiveQuery* avoid,
                                  const ModelSearchOptions& options = {});

}  // namespace bddfc

#endif  // BDDFC_FINITEMODEL_MODEL_SEARCH_H_
