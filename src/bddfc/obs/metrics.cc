#include "bddfc/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace bddfc::obs {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

void Histogram::Record(uint64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  size_t bucket = 0;
  while (bucket + 1 < kBuckets && (uint64_t{1} << bucket) < sample) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::MergeFrom(const HistogramPoint& point) {
  count_.fetch_add(point.count, std::memory_order_relaxed);
  sum_.fetch_add(point.sum, std::memory_order_relaxed);
  for (const auto& [bucket, n] : point.buckets) {
    if (bucket < kBuckets) {
      buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
    }
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramPoint p;
    p.name = name;
    p.count = h->Count();
    p.sum = h->Sum();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t n = h->BucketCount(i);
      if (n != 0) p.buckets.emplace_back(i, n);
    }
    snap.histograms.push_back(std::move(p));
  }
  return snap;  // maps iterate in name order: the snapshot is sorted
}

void MetricsRegistry::MergeFrom(const MetricsSnapshot& snap) {
  for (const MetricPoint& p : snap.counters) GetCounter(p.name)->Add(p.value);
  for (const MetricPoint& p : snap.gauges) GetGauge(p.name)->Set(p.value);
  for (const HistogramPoint& p : snap.histograms) {
    GetHistogram(p.name)->MergeFrom(p);
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const MetricPoint& p : counters) {
    out += p.name + " " + std::to_string(p.value) + "\n";
  }
  for (const MetricPoint& p : gauges) {
    out += p.name + " " + std::to_string(p.value) + "\n";
  }
  for (const HistogramPoint& h : histograms) {
    out += h.name + " count=" + std::to_string(h.count) +
           " sum=" + std::to_string(h.sum);
    for (const auto& [bucket, n] : h.buckets) {
      out += " le2^" + std::to_string(bucket) + "=" + std::to_string(n);
    }
    out += "\n";
  }
  return out;
}

namespace {

void AppendPoints(std::string* out, const std::vector<MetricPoint>& points) {
  for (size_t i = 0; i < points.size(); ++i) {
    if (i) *out += ",";
    *out += "\"" + points[i].name + "\":" + std::to_string(points[i].value);
  }
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  AppendPoints(&out, counters);
  out += "},\"gauges\":{";
  AppendPoints(&out, gauges);
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramPoint& h = histograms[i];
    if (i) out += ",";
    out += "\"" + h.name + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) + ",\"buckets\":[";
    for (size_t j = 0; j < h.buckets.size(); ++j) {
      if (j) out += ",";
      out += "[";
      out += std::to_string(h.buckets[j].first);
      out += ",";
      out += std::to_string(h.buckets[j].second);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace bddfc::obs
