// The skeleton S(D, T) (§3.2, Def. 12) and its Lemma 3 structure.
//
// S(D, T) is the substructure of Chase(D, T) consisting of all elements,
// all atoms of D, and all atoms of the tuple generating predicates (TGPs).
// Under the (♠5) normal form, S_non is a forest whose edges record which
// element demanded which witness; the finite-model pipeline quotients S,
// not the full chase.

#ifndef BDDFC_CHASE_SKELETON_H_
#define BDDFC_CHASE_SKELETON_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// The skeleton structure plus the TGP set that defines it.
struct Skeleton {
  Structure structure;
  std::unordered_set<PredId> tgps;

  explicit Skeleton(SignaturePtr sig) : structure(std::move(sig)) {}
};

/// Extracts S(D, T) from a chase result: atoms of `instance`, atoms of TGP
/// predicates in the chase structure, and every chase element as a domain
/// element (elements carrying only flesh atoms are kept, per Def. 12).
Skeleton SkeletonOf(const Theory& theory, const Structure& instance,
                    const ChaseResult& chase);

/// The Lemma 3 invariants of a skeleton, computed over its non-constant
/// elements (labeled nulls) and binary atoms between them.
struct SkeletonAnalysis {
  bool acyclic = false;              ///< Lemma 3(i): S_non is acyclic
  bool indegree_at_most_one = false; ///< Lemma 3(ii) (in-degree <= 1; roots have 0)
  bool is_forest = false;            ///< Lemma 3(iii)
  int max_degree = 0;                ///< Lemma 3(iv): bounded by |Σ|+1
  /// Non-constant elements with no non-constant predecessor.
  std::vector<TermId> roots;
  /// Unique non-constant parent of each non-root null.
  std::unordered_map<TermId, TermId> parent;
  /// Forest depth of each null (roots have depth 0); empty if not a forest.
  std::unordered_map<TermId, int> depth;
};

/// Analyzes the null-to-null binary edges of `s`.
SkeletonAnalysis AnalyzeSkeleton(const Structure& s);

}  // namespace bddfc

#endif  // BDDFC_CHASE_SKELETON_H_
