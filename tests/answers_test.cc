// Tests for semi-naive saturation, certain answers and program printing.

#include <gtest/gtest.h>

#include "bddfc/chase/chase.h"
#include "bddfc/chase/seminaive.h"
#include "bddfc/eval/answers.h"
#include "bddfc/parser/parser.h"
#include "bddfc/parser/printer.h"
#include "bddfc/workload/generators.h"

namespace bddfc {
namespace {

Program MustParse(const char* text) {
  auto r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(SeminaiveTest, TransitiveClosureMatchesNaiveChase) {
  Program p = MustParse(R"(
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(a, b). e(b, c). e(c, d). e(d, e1).
  )");
  SaturateResult sn = SaturateDatalog(p.theory, p.instance);
  ASSERT_TRUE(sn.status.ok()) << sn.status.ToString();
  ChaseResult naive = RunChase(p.theory, p.instance);
  EXPECT_EQ(sn.structure.NumFacts(), naive.structure.NumFacts());
  EXPECT_TRUE(sn.structure.ContainsAllFactsOf(naive.structure));
  EXPECT_TRUE(naive.structure.ContainsAllFactsOf(sn.structure));
  // 4-path closure: 4+3+2+1 = 10 facts.
  EXPECT_EQ(sn.structure.NumFacts(), 10u);
}

TEST(SeminaiveTest, IgnoresExistentialRules) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z) -> t(X, Z).
    e(a, b). e(b, c).
  )");
  SaturateResult sn = SaturateDatalog(p.theory, p.instance);
  ASSERT_TRUE(sn.status.ok());
  // Only the datalog rule fires: t(a, c), nothing invented.
  EXPECT_EQ(sn.structure.NumFacts(), 3u);
  EXPECT_EQ(sn.facts_derived, 1u);
}

TEST(SeminaiveTest, MultiHeadAndZeroRounds) {
  Program p = MustParse(R"(
    e(X, Y) -> s(X), s(Y).
    e(a, b).
  )");
  SaturateResult sn = SaturateDatalog(p.theory, p.instance);
  EXPECT_EQ(sn.facts_derived, 2u);
  // Empty rule set: zero derivations, input preserved.
  Program q = MustParse("e(a, b).");
  SaturateResult none = SaturateDatalog(q.theory, q.instance);
  EXPECT_EQ(none.facts_derived, 0u);
  EXPECT_EQ(none.structure.NumFacts(), 1u);
}

TEST(SeminaiveTest, AgreesWithNaiveOnRandomTheories) {
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    auto sig = std::make_shared<Signature>();
    Theory t = RandomAcyclicBinaryTheory(sig, 4, 0, 5, seed);
    Structure d(sig);
    Rng rng(seed);
    PredId b0 = std::move(sig->FindPredicate("b0")).ValueOrDie();
    PredId b1 = std::move(sig->FindPredicate("b1")).ValueOrDie();
    std::vector<TermId> consts;
    for (int i = 0; i < 4; ++i) {
      consts.push_back(sig->AddConstant("k" + std::to_string(i)));
    }
    for (int i = 0; i < 6; ++i) {
      d.AddFact(i % 2 ? b0 : b1,
                {consts[rng.Uniform(4)], consts[rng.Uniform(4)]});
    }
    SaturateResult sn = SaturateDatalog(t, d);
    ChaseResult naive = RunChase(t, d);
    EXPECT_EQ(sn.structure.NumFacts(), naive.structure.NumFacts())
        << "seed " << seed;
  }
}

TEST(CertainAnswersTest, ChaseRouteFiltersNulls) {
  Program p = MustParse(R"(
    emp(X) -> exists Y: boss(X, Y).
    boss(X, Y) -> senior(Y).
    emp(ann). boss(bo, cy).
  )");
  const Signature& sig = p.theory.sig();
  // Q(x) = senior(x): cy is certain; ann's invented boss is a null and must
  // not be reported.
  ConjunctiveQuery q;
  q.answer_vars.push_back(MakeVar(0));
  PredId senior = std::move(sig.FindPredicate("senior")).ValueOrDie();
  q.atoms.push_back(Atom(senior, {MakeVar(0)}));
  CertainAnswersResult r = CertainAnswers(p.theory, p.instance, q);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.complete);
  TermId cy = std::move(sig.FindConstant("cy")).ValueOrDie();
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0], std::vector<TermId>{cy});
}

TEST(CertainAnswersTest, RewritingRouteAgreesWithChase) {
  Program p = MustParse(R"(
    mgr(X) -> emp(X).
    emp(X) -> exists D: works_in(X, D).
    emp(ann). mgr(bo).
  )");
  const Signature& sig = p.theory.sig();
  ConjunctiveQuery q;
  q.answer_vars.push_back(MakeVar(0));
  PredId emp = std::move(sig.FindPredicate("emp")).ValueOrDie();
  q.atoms.push_back(Atom(emp, {MakeVar(0)}));
  CertainAnswersResult via_chase = CertainAnswers(p.theory, p.instance, q);
  CertainAnswersResult via_rw =
      CertainAnswersViaRewriting(p.theory, p.instance, q);
  ASSERT_TRUE(via_chase.complete);
  ASSERT_TRUE(via_rw.complete);
  EXPECT_EQ(via_chase.answers, via_rw.answers);
  EXPECT_EQ(via_chase.answers.size(), 2u);  // ann and bo
}

TEST(CertainAnswersTest, BinaryAnswerTuples) {
  Program p = MustParse(R"(
    boss(X, Y), boss(Y, Z) -> skip(X, Z).
    boss(a, b). boss(b, c). boss(c, d).
  )");
  const Signature& sig = p.theory.sig();
  ConjunctiveQuery q;
  q.answer_vars = {MakeVar(0), MakeVar(1)};
  PredId skip = std::move(sig.FindPredicate("skip")).ValueOrDie();
  q.atoms.push_back(Atom(skip, {MakeVar(0), MakeVar(1)}));
  CertainAnswersResult r = CertainAnswers(p.theory, p.instance, q);
  EXPECT_EQ(r.answers.size(), 2u);  // (a,c) and (b,d)
}

TEST(PrinterTest, ProgramRoundTripsThroughParser) {
  Program p = MustParse(R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(Y, Z) -> t(X, Z).
    e(a, b).
    ?- t(X, Y).
  )");
  std::string text = ToProgramText(p.theory, &p.instance, &p.queries);
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(reparsed.value().theory.size(), p.theory.size());
  EXPECT_EQ(reparsed.value().instance.NumFacts(), p.instance.NumFacts());
  EXPECT_EQ(reparsed.value().queries.size(), p.queries.size());
  // Second print is identical (stable output).
  Program& p2 = reparsed.value();
  EXPECT_EQ(ToProgramText(p2.theory, &p2.instance, &p2.queries), text);
}

TEST(PrinterTest, ExistentialClauseIsPrinted) {
  Program p = MustParse("u(X) -> exists Z1, Z2: t(X, Z1, Z2).");
  std::string text = RuleToProgramText(p.theory.rules()[0], p.theory.sig());
  EXPECT_NE(text.find("exists"), std::string::npos);
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().theory.rules()[0].ExistentialVariables().size(),
            2u);
}

TEST(PrinterTest, NullNamesReparseAsConstants) {
  auto sig = std::make_shared<Signature>();
  PredId e = std::move(sig->AddPredicate("e", 2)).ValueOrDie();
  Structure s(sig);
  s.AddFact(e, {sig->AddNull(), sig->AddNull()});
  Theory t(sig);
  std::string text = ToProgramText(t, &s, nullptr);
  auto reparsed = ParseProgram(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(reparsed.value().instance.NumFacts(), 1u);
}

}  // namespace
}  // namespace bddfc
