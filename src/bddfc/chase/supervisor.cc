#include "bddfc/chase/supervisor.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {
namespace {

/// One rung of the degradation ladder: a label for reports plus the
/// option it turns off. Rungs apply cumulatively, most-likely-culprit
/// first (the newest fast paths), and each preserves byte-identity.
struct Rung {
  const char* name;
  void (*apply)(ChaseOptions*);
};

std::vector<Rung> BuildLadder(const ChaseOptions& options) {
  std::vector<Rung> rungs;
  const bool fast_paths = options.engine != ChaseEngine::kNaive;
  if (fast_paths && options.compiled_plans) {
    rungs.push_back({"plans-off",
                     [](ChaseOptions* o) { o->compiled_plans = false; }});
  }
  if (fast_paths && options.vectorized_sink) {
    rungs.push_back({"vsink-off",
                     [](ChaseOptions* o) { o->vectorized_sink = false; }});
  }
  if (options.engine == ChaseEngine::kParallel) {
    rungs.push_back(
        {"serial", [](ChaseOptions* o) { o->engine = ChaseEngine::kDelta; }});
  }
  return rungs;
}

}  // namespace

SupervisedChase RunChaseSupervised(const Theory& theory,
                                   const Structure& instance,
                                   const ChaseOptions& chase_options,
                                   const SupervisorOptions& sup_options) {
  // The attempts need a parent to hang child contexts off; an ungoverned
  // caller gets a local one (no deadline, no limits — pure isolation).
  ExecutionContext local_parent;
  ExecutionContext* parent = sup_options.context != nullptr
                                 ? sup_options.context
                                 : chase_options.context != nullptr
                                       ? chase_options.context
                                       : &local_parent;

  const std::vector<Rung> ladder = BuildLadder(chase_options);
  ChaseOptions attempt_options = chase_options;
  size_t next_rung = 0;

  SupervisedChase out{ChaseResult(instance.signature_ptr()), 0, {}, false};
  // The run's registry, not the process-wide one: the per-retry Reset below
  // must only wipe THIS run's counters. With the global registry a retry in
  // one request erased every concurrent request's series.
  obs::MetricsRegistry& metrics = ContextMetrics(parent);

  for (size_t attempt = 0;; ++attempt) {
    // Attempt isolation: fresh child context (fault latches die with it)
    // and a signature mark so an aborted attempt's invented nulls roll
    // back — the retry then reproduces the fault-free run's TermIds.
    const Signature::Mark mark = instance.signature_ptr()->TakeMark();
    std::unique_ptr<ExecutionContext> child =
        parent->CreateChild(sup_options.child_memory_limit);
    attempt_options.context = child.get();

    out.result = RunChase(theory, instance, attempt_options);
    out.attempts = attempt + 1;

    // Only kInternal (injected fault / paranoia trip) is retryable: a
    // budget exhaustion is a correct partial answer and a semantic error
    // would fail identically on every rung.
    if (out.result.status.code() != StatusCode::kInternal) {
      out.recovered = attempt > 0;
      break;
    }
    if (attempt >= sup_options.max_retries || parent->Exhausted()) break;
    double backoff = std::min(
        sup_options.backoff_ms * static_cast<double>(uint64_t{1} << attempt),
        sup_options.max_backoff_ms);
    if (parent->has_deadline()) {
      const double remaining = parent->RemainingMs();
      if (remaining <= 0) break;
      backoff = std::min(backoff, remaining / 4.0);
    }

    // Discard the failed attempt before rolling the signature back: the
    // result's structure references the ids being forgotten.
    out.result = ChaseResult(instance.signature_ptr());
    instance.signature_ptr()->RollbackTo(mark);

    // A recovered run should publish one clean set of counters — wipe
    // whatever the failed attempt published. The supervisor's own series
    // is published once, after the loop, so it survives this reset.
    if (metrics.enabled()) metrics.Reset();

    std::string degraded;
    if (next_rung < ladder.size()) {
      ladder[next_rung].apply(&attempt_options);
      degraded = ladder[next_rung].name;
      out.degradations.emplace_back(degraded);
      ++next_rung;
    }

    obs::TraceSpan span(&parent->tracer(), "supervisor.retry");
    std::string note = "attempt " + std::to_string(attempt + 2) +
                       (degraded.empty() ? std::string()
                                         : ", degraded: " + degraded) +
                       ", backoff " + std::to_string(backoff) + "ms";
    span.set_detail(note);
    parent->NotePhase("supervisor.retry", std::move(note));
    if (backoff > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
    }
  }

  if (metrics.enabled()) {
    if (out.attempts > 1) {
      metrics.GetCounter("bddfc.supervisor.retries")->Add(out.attempts - 1);
    }
    if (!out.degradations.empty()) {
      metrics.GetCounter("bddfc.supervisor.degradations")
          ->Add(out.degradations.size());
    }
    if (out.recovered) {
      metrics.GetCounter("bddfc.supervisor.recoveries")->Add(1);
    }
    if (out.result.status.code() == StatusCode::kInternal) {
      metrics.GetCounter("bddfc.supervisor.gave_up")->Add(1);
    }
  }
  return out;
}

}  // namespace bddfc
