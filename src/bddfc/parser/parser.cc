#include "bddfc/parser/parser.h"

#include <cctype>
#include <memory>
#include <unordered_map>

#include "bddfc/base/faults.h"

namespace bddfc {

namespace {

enum class TokKind {
  kIdent,     // lowercase-leading: predicate or constant
  kQuoted,    // "..." — predicate or constant with arbitrary name
  kVariable,  // uppercase-leading
  kArrow,     // -> or =>
  kComma,
  kLParen,
  kRParen,
  kPeriod,
  kColon,
  kQuery,     // ?-
  kExists,    // keyword 'exists'
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == ',') {
        out.push_back({TokKind::kComma, ",", line_});
        ++pos_;
        continue;
      }
      if (c == '(') {
        out.push_back({TokKind::kLParen, "(", line_});
        ++pos_;
        continue;
      }
      if (c == ')') {
        out.push_back({TokKind::kRParen, ")", line_});
        ++pos_;
        continue;
      }
      if (c == '.') {
        out.push_back({TokKind::kPeriod, ".", line_});
        ++pos_;
        continue;
      }
      if (c == ':') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
          // Prolog-style rule arrow is not supported to avoid ambiguity
          // with facts; keep ':' for the exists clause.
          return Status::InvalidArgument("line " + std::to_string(line_) +
                                         ": ':-' is not supported; use '->'");
        }
        out.push_back({TokKind::kColon, ":", line_});
        continue;
      }
      if (c == '-' || c == '=') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          out.push_back({TokKind::kArrow, "->", line_});
          pos_ += 2;
          continue;
        }
        return Status::InvalidArgument("line " + std::to_string(line_) +
                                       ": stray '" + std::string(1, c) + "'");
      }
      if (c == '?') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          out.push_back({TokKind::kQuery, "?-", line_});
          pos_ += 2;
          continue;
        }
        return Status::InvalidArgument("line " + std::to_string(line_) +
                                       ": stray '?'");
      }
      if (c == '"') {
        // Quoted name: any symbol whose spelling would not lex as a plain
        // lowercase identifier (uppercase-leading constants, 'exists', …).
        // Escapes: \" and \\.
        ++pos_;
        std::string name;
        bool closed = false;
        while (pos_ < text_.size()) {
          char q = text_[pos_];
          if (q == '"') {
            ++pos_;
            closed = true;
            break;
          }
          if (q == '\\' && pos_ + 1 < text_.size() &&
              (text_[pos_ + 1] == '"' || text_[pos_ + 1] == '\\')) {
            name += text_[pos_ + 1];
            pos_ += 2;
            continue;
          }
          if (q == '\n') break;  // unterminated on this line
          name += q;
          ++pos_;
        }
        if (!closed) {
          return Status::InvalidArgument("line " + std::to_string(line_) +
                                         ": unterminated quoted name");
        }
        if (name.empty()) {
          return Status::InvalidArgument("line " + std::to_string(line_) +
                                         ": empty quoted name");
        }
        out.push_back({TokKind::kQuoted, std::move(name), line_});
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\'')) {
          ++pos_;
        }
        std::string word(text_.substr(start, pos_ - start));
        if (word == "exists") {
          out.push_back({TokKind::kExists, word, line_});
        } else if (std::isupper(static_cast<unsigned char>(word[0]))) {
          out.push_back({TokKind::kVariable, word, line_});
        } else {
          out.push_back({TokKind::kIdent, word, line_});
        }
        continue;
      }
      return Status::InvalidArgument("line " + std::to_string(line_) +
                                     ": unexpected character '" +
                                     std::string(1, c) + "'");
    }
    out.push_back({TokKind::kEnd, "", line_});
    return out;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> toks, Signature* sig, int32_t* next_var)
      : toks_(std::move(toks)), sig_(sig), next_var_(next_var) {}

  const Token& Peek() const { return toks_[idx_]; }
  Token Next() { return toks_[idx_++]; }
  bool Accept(TokKind k) {
    if (Peek().kind == k) {
      ++idx_;
      return true;
    }
    return false;
  }
  Status Expect(TokKind k, const char* what) {
    if (!Accept(k)) {
      return Status::InvalidArgument("line " + std::to_string(Peek().line) +
                                     ": expected " + what + ", got '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }

  /// Parses a term; variables scope over the current statement.
  Result<TermId> ParseTerm() {
    Token t = Next();
    if (t.kind == TokKind::kVariable) {
      auto it = var_scope_.find(t.text);
      if (it != var_scope_.end()) return it->second;
      TermId v = MakeVar((*next_var_)++);
      var_scope_.emplace(t.text, v);
      return v;
    }
    if (t.kind == TokKind::kIdent || t.kind == TokKind::kQuoted) {
      return sig_->AddConstant(t.text);
    }
    return Status::InvalidArgument("line " + std::to_string(t.line) +
                                   ": expected term, got '" + t.text + "'");
  }

  Result<Atom> ParseAtom() {
    Token name = Next();
    if (name.kind != TokKind::kIdent && name.kind != TokKind::kQuoted) {
      return Status::InvalidArgument("line " + std::to_string(name.line) +
                                     ": expected predicate name, got '" +
                                     name.text + "'");
    }
    std::vector<TermId> args;
    if (Accept(TokKind::kLParen)) {
      if (!Accept(TokKind::kRParen)) {
        while (true) {
          BDDFC_ASSIGN_OR_RETURN(TermId t, ParseTerm());
          args.push_back(t);
          if (Accept(TokKind::kRParen)) break;
          BDDFC_RETURN_NOT_OK(Expect(TokKind::kComma, "',' or ')'"));
        }
      }
    }
    BDDFC_ASSIGN_OR_RETURN(
        PredId p, sig_->AddPredicate(name.text, static_cast<int>(args.size())));
    return Atom(p, std::move(args));
  }

  Result<std::vector<Atom>> ParseAtomList() {
    std::vector<Atom> atoms;
    while (true) {
      BDDFC_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      atoms.push_back(std::move(a));
      if (!Accept(TokKind::kComma)) break;
    }
    return atoms;
  }

  /// Parses one statement into `program`. Returns false at end of input.
  Result<bool> ParseStatement(Program* program) {
    var_scope_.clear();
    if (Peek().kind == TokKind::kEnd) return false;

    if (Accept(TokKind::kQuery)) {
      BDDFC_ASSIGN_OR_RETURN(std::vector<Atom> atoms, ParseAtomList());
      BDDFC_RETURN_NOT_OK(Expect(TokKind::kPeriod, "'.'"));
      program->queries.emplace_back(std::move(atoms));
      return true;
    }

    BDDFC_ASSIGN_OR_RETURN(std::vector<Atom> first, ParseAtomList());
    if (Accept(TokKind::kArrow)) {
      // Rule. Optional 'exists V1, V2 :' clause before the head.
      std::vector<TermId> declared_existentials;
      if (Accept(TokKind::kExists)) {
        while (true) {
          BDDFC_ASSIGN_OR_RETURN(TermId v, ParseTerm());
          if (!IsVar(v)) {
            return Status::InvalidArgument(
                "line " + std::to_string(Peek().line) +
                ": 'exists' clause must list variables");
          }
          declared_existentials.push_back(v);
          if (!Accept(TokKind::kComma)) break;
        }
        BDDFC_RETURN_NOT_OK(Expect(TokKind::kColon, "':'"));
      }
      BDDFC_ASSIGN_OR_RETURN(std::vector<Atom> head, ParseAtomList());
      BDDFC_RETURN_NOT_OK(Expect(TokKind::kPeriod, "'.'"));
      Rule rule(std::move(first), std::move(head));
      // Sanity: declared existentials must indeed be existential.
      std::vector<TermId> body_vars = rule.BodyVariables();
      for (TermId v : declared_existentials) {
        if (std::find(body_vars.begin(), body_vars.end(), v) !=
            body_vars.end()) {
          return Status::InvalidArgument(
              "declared existential variable also occurs in the body of: " +
              rule.ToString(*sig_));
        }
      }
      BDDFC_RETURN_NOT_OK(program->theory.AddRule(std::move(rule)));
      return true;
    }

    // Fact list.
    BDDFC_RETURN_NOT_OK(Expect(TokKind::kPeriod, "'.' or '->'"));
    for (const Atom& a : first) {
      if (!a.IsGround()) {
        return Status::InvalidArgument("fact is not ground: " +
                                       a.ToString(*sig_));
      }
      program->instance.AddFact(a);
    }
    return true;
  }

 private:
  std::vector<Token> toks_;
  size_t idx_ = 0;
  Signature* sig_;
  int32_t* next_var_;
  std::unordered_map<std::string, TermId> var_scope_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view text, SignaturePtr sig,
                             FaultRegistry* faults) {
  // Chaos site (fail-stop; the CLI surfaces kInternal as an ordinary
  // error). Sessions pass their own registry; standalone callers fall back
  // to the process-global one. One relaxed load when chaos is off.
  if (FaultRegistry& reg =
          faults != nullptr ? *faults : FaultRegistry::Global();
      reg.enabled()) {
    FaultFire fire = reg.Hit(faults::kParserParse);
    if (fire.fired) {
      return Status(StatusCode::kInternal, "injected fault at parser.parse");
    }
  }
  if (sig == nullptr) sig = std::make_shared<Signature>();
  BDDFC_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(text).Run());
  Program program(sig);
  int32_t next_var = 0;
  Parser parser(std::move(toks), sig.get(), &next_var);
  while (true) {
    BDDFC_ASSIGN_OR_RETURN(bool more, parser.ParseStatement(&program));
    if (!more) break;
  }
  return program;
}

Result<ConjunctiveQuery> ParseQuery(std::string_view text, Signature* sig,
                                    int32_t* next_var) {
  BDDFC_ASSIGN_OR_RETURN(std::vector<Token> toks,
                         Lexer(std::string(text) + " .").Run());
  Parser parser(std::move(toks), sig, next_var);
  // Reuse the statement machinery by parsing an atom list directly.
  BDDFC_ASSIGN_OR_RETURN(std::vector<Atom> atoms, parser.ParseAtomList());
  return ConjunctiveQuery(std::move(atoms));
}

Result<ConjunctiveQuery> ParseQuery(std::string_view text, Signature* sig) {
  int32_t next_var = 0;
  return ParseQuery(text, sig, &next_var);
}

}  // namespace bddfc
