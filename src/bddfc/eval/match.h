// CQ evaluation over structures: index-backed backtracking joins.

#ifndef BDDFC_EVAL_MATCH_H_
#define BDDFC_EVAL_MATCH_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"

namespace bddfc {

/// A variable binding produced by matching: variable id → constant id.
using Binding = std::unordered_map<TermId, TermId>;

/// Evaluates conjunctions of atoms against one structure.
///
/// The matcher holds only a reference to the structure; it is cheap to
/// construct and safe to use while the structure grows (the chase constructs
/// one per round).
class Matcher {
 public:
  explicit Matcher(const Structure& s) : s_(s) {}

  /// True iff some extension of `partial` maps every variable of `atoms` to
  /// a domain constant such that all atoms hold in the structure.
  bool Exists(const std::vector<Atom>& atoms,
              const Binding& partial = {}) const;

  /// Enumerates all total matches extending `partial`. The callback returns
  /// false to stop enumeration early. Bindings passed to the callback cover
  /// every variable of `atoms` (plus the entries of `partial`).
  void Enumerate(const std::vector<Atom>& atoms, const Binding& partial,
                 const std::function<bool(const Binding&)>& on_match) const;

  /// Counts total matches (distinct bindings of all variables).
  size_t CountMatches(const std::vector<Atom>& atoms,
                      const Binding& partial = {}) const;

 private:
  const Structure& s_;
};

/// C ⊨ ∃x̄ Q(x̄) for a Boolean CQ (answer variables treated as existential).
bool Satisfies(const Structure& s, const ConjunctiveQuery& q);

/// C ⊨ Φ for a UCQ: some disjunct holds.
bool SatisfiesUcq(const Structure& s, const UnionOfCQs& ucq);

/// C ⊨ Q(e): satisfaction with the first answer variable bound to `e`.
/// Used for positive types ptp_n(C, e, Σ) membership tests (Def. 3).
bool SatisfiesAt(const Structure& s, const ConjunctiveQuery& q, TermId e);

/// Converts a structure to a Boolean CQ: labeled nulls become variables,
/// named constants stay. The canonical-query view of an instance.
ConjunctiveQuery StructureToQuery(const Structure& s);

/// True iff there is a homomorphism from `a` to `b` fixing named (non-null)
/// constants. Labeled nulls of `a` may map anywhere.
bool HasHomomorphism(const Structure& a, const Structure& b);

}  // namespace bddfc

#endif  // BDDFC_EVAL_MATCH_H_
