#include "bddfc/obs/trace.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace bddfc::obs {

namespace {

/// Cheapest monotonic tick source: raw TSC where we have one (modern
/// x86-64 TSCs are invariant and socket-synchronized — this is what
/// clock_gettime reads under the hood, minus the scaling math), else the
/// steady clock in nanoseconds. Ticks are converted to microseconds at
/// export against the (epoch, now) steady-clock anchors.
uint64_t Ticks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Stable small thread id, assigned on first recorded event.
uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t tid = UINT32_MAX;
  if (tid == UINT32_MAX) tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Per-thread stack of open span ids; the top is CurrentSpanId(). Fixed
/// depth so pushing never allocates; spans past the cap simply don't
/// become "current" (their events still record with the right parent).
constexpr size_t kMaxSpanDepth = 128;
thread_local uint64_t tls_span_stack[kMaxSpanDepth];
thread_local size_t tls_span_depth = 0;

bool PushSpan(uint64_t id) {
  if (tls_span_depth >= kMaxSpanDepth) return false;
  tls_span_stack[tls_span_depth++] = id;
  return true;
}

void PopSpan() {
  if (tls_span_depth > 0) --tls_span_depth;
}

void JsonEscapeInto(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer();
  return *instance;
}

uint64_t Tracer::CurrentSpanId() {
  return tls_span_depth == 0 ? 0 : tls_span_stack[tls_span_depth - 1];
}

void Tracer::Enable(size_t capacity_events) {
  std::lock_guard<std::mutex> lock(mu_);
  // Reuse the ring when the capacity is unchanged: stale slots become
  // unreachable once the indices reset, and re-touching megabytes of slot
  // memory here would evict the caller's working set from cache.
  const size_t capacity = std::max<size_t>(64, capacity_events);
  if (ring_.size() != capacity) ring_.assign(capacity, TraceEvent{});
  next_ = 0;
  filled_ = 0;
  overwritten_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  epoch_ticks_ = Ticks();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  filled_ = 0;
  overwritten_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  epoch_ticks_ = Ticks();
}

uint64_t Tracer::Begin(const char* name, uint64_t parent_id) {
  static std::atomic<uint64_t> next_span_id{1};
  uint64_t id = next_span_id.fetch_add(1, std::memory_order_relaxed);
  Record('B', name, id, parent_id, {});
  return id;
}

void Tracer::End(const char* name, uint64_t span_id, uint64_t parent_id,
                 std::string_view detail) {
  Record('E', name, span_id, parent_id, detail);
}

void Tracer::Record(char phase, const char* name, uint64_t span_id,
                    uint64_t parent_id, std::string_view detail) {
  const uint32_t tid = ThisThreadTraceId();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty() || !enabled()) return;
  TraceEvent& e = ring_[next_];
  // The tick read happens under the lock, so recorded order == ts order
  // and the export is monotone without sorting.
  e.ts_ticks = static_cast<int64_t>(Ticks() - epoch_ticks_);
  e.span_id = span_id;
  e.parent_id = parent_id;
  e.tid = tid;
  e.phase = phase;
  e.name = name;
  size_t n = std::min(detail.size(), sizeof(e.detail) - 1);
  std::memcpy(e.detail, detail.data(), n);
  e.detail[n] = '\0';
  if (++next_ == ring_.size()) next_ = 0;
  // The workload between two events evicts the ring, so the next slot is
  // a guaranteed cache miss; start fetching it now, while the caller has
  // microseconds of real work to hide the latency behind.
  __builtin_prefetch(&ring_[next_], /*rw=*/1, /*locality=*/0);
  if (filled_ < ring_.size()) {
    ++filled_;
  } else {
    overwritten_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string Tracer::ExportChromeJson() const {
  // Copy the ring oldest-to-newest, then repair what wrapping broke: an
  // 'E' whose 'B' was overwritten is dropped, a 'B' still open at export
  // gets a synthetic 'E' at the end (innermost first, per thread).
  std::vector<TraceEvent> events;
  double us_per_tick = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.reserve(filled_);
    const size_t cap = ring_.size();
    const size_t start = filled_ < cap ? 0 : next_;
    for (size_t i = 0; i < filled_; ++i) {
      events.push_back(ring_[(start + i) % cap]);
    }
    // Calibrate raw ticks against the steady clock over the epoch->now
    // window. Both anchors are exact, the tick rate is constant, so the
    // linear map is accurate for every event in between (and an export
    // taken instants after Enable maps everything to ~0, still monotone).
    const uint64_t tick_span = Ticks() - epoch_ticks_;
    if (tick_span > 0) {
      const double us_span =
          std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
              std::chrono::steady_clock::now() - epoch_)
              .count();
      us_per_tick = us_span / static_cast<double>(tick_span);
    }
  }
  auto to_us = [us_per_tick](int64_t ticks) {
    return static_cast<int64_t>(static_cast<double>(ticks) * us_per_tick);
  };

  // Per-tid stacks of indices into `events`; -1 marks a dropped event.
  std::vector<char> keep(events.size(), 1);
  std::vector<std::pair<uint32_t, std::vector<size_t>>> stacks;
  auto stack_for = [&](uint32_t tid) -> std::vector<size_t>& {
    for (auto& [t, s] : stacks) {
      if (t == tid) return s;
    }
    stacks.emplace_back(tid, std::vector<size_t>{});
    return stacks.back().second;
  };
  for (size_t i = 0; i < events.size(); ++i) {
    std::vector<size_t>& stack = stack_for(events[i].tid);
    if (events[i].phase == 'B') {
      stack.push_back(i);
    } else if (stack.empty() ||
               events[stack.back()].span_id != events[i].span_id) {
      keep[i] = 0;  // orphan: its 'B' was overwritten
    } else {
      stack.pop_back();
    }
  }

  int64_t max_ts = 0;
  for (const TraceEvent& e : events) {
    max_ts = std::max(max_ts, to_us(e.ts_ticks));
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const TraceEvent& e, char phase, int64_t ts) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    JsonEscapeInto(&out, e.name);
    out += "\",\"cat\":\"bddfc\",\"ph\":\"";
    out += phase;
    out += "\",\"ts\":" + std::to_string(ts) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"args\":{\"span\":" + std::to_string(e.span_id) +
           ",\"parent\":" + std::to_string(e.parent_id);
    if (phase == 'E' && e.detail[0] != '\0') {
      out += ",\"detail\":\"";
      JsonEscapeInto(&out, e.detail);
      out += "\"";
    }
    out += "}}";
  };
  for (size_t i = 0; i < events.size(); ++i) {
    if (keep[i]) emit(events[i], events[i].phase, to_us(events[i].ts_ticks));
  }
  // Close spans still open at export time, innermost first.
  for (auto& [tid, stack] : stacks) {
    (void)tid;
    for (size_t j = stack.size(); j > 0; --j) {
      emit(events[stack[j - 1]], 'E', max_ts);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

TraceSpan::TraceSpan(const char* name) {
  if (!Tracer::Global().enabled()) return;
  Open(Tracer::Global(), name, Tracer::CurrentSpanId());
}

TraceSpan::TraceSpan(const char* name, uint64_t explicit_parent) {
  if (!Tracer::Global().enabled()) return;
  Open(Tracer::Global(), name, explicit_parent);
}

TraceSpan::TraceSpan(Tracer* tracer, const char* name) {
  Tracer& t = tracer != nullptr ? *tracer : Tracer::Global();
  if (!t.enabled()) return;
  Open(t, name, Tracer::CurrentSpanId());
}

void TraceSpan::Open(Tracer& tracer, const char* name, uint64_t parent) {
  tracer_ = &tracer;
  name_ = name;
  parent_ = parent;
  id_ = tracer.Begin(name, parent);
  active_ = true;
  pushed_ = PushSpan(id_);
}

TraceSpan::~TraceSpan() {
  if (pushed_) PopSpan();
  if (active_) tracer_->End(name_, id_, parent_, detail_);
}

}  // namespace bddfc::obs
