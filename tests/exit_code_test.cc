// End-to-end tests of the CLI exit-code contract (tools/bddfc_cli.cc):
//
//   0  success                      2  usage / parse error
//   1  negative semantic outcome    3  resource exhausted
//
// and of the fuzzer's 0/1/2 contract plus its fault-injection flags. The
// test executes the real binaries (paths injected by CMake) and inspects
// the process exit status, so it covers argument parsing, the governor
// wiring and the report printing that unit tests cannot reach.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

/// Executes `binary args...` with stdout/stderr discarded; returns the exit
/// code (or -1 when the process died abnormally).
int RunBinary(const std::string& binary, const std::string& args) {
  std::string cmd = binary + " " + args + " > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

/// Writes a program under the test's scratch dir and returns its path.
std::string WriteProgram(const std::string& name, const std::string& text) {
  fs::path dir = fs::current_path() / "exit_code_scratch";
  fs::create_directories(dir);
  fs::path path = dir / name;
  std::ofstream out(path);
  out << text;
  return path.string();
}

const char* kInfiniteTc =
    "e(X, Y), e(Y, Z) -> e(X, Z).\n"
    "e(X, Y) -> exists W: e(Y, W).\n"
    "e(a, b).\n"
    "?- e(X, X).\n";

const char* kTerminating =
    "e(X, Y) -> exists Z: r(Y, Z).\n"
    "e(a, b).\n"
    "?- r(X, X).\n";

TEST(CliExitCodeTest, SuccessIsZero) {
  std::string prog = WriteProgram("terminating.dlg", kTerminating);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + prog), 0);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "rewrite " + prog), 0);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "classify " + prog), 0);
  // The chase terminates avoiding r(X, X): a counter-model exists.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "model " + prog), 0);
}

TEST(CliExitCodeTest, UsageAndParseErrorsAreTwo) {
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, ""), 2);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "frobnicate nope.dlg"), 2);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase /nonexistent/no.dlg"), 2);
  std::string bad = WriteProgram("bad.dlg", "this is not datalog (\n");
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + bad), 2);
  std::string prog = WriteProgram("tc.dlg", kInfiniteTc);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + prog + " --deadline-ms -5"), 2);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + prog + " --mem-budget-mb junk"), 2);
}

TEST(CliExitCodeTest, NegativeSemanticOutcomeIsOne) {
  // The query e(X, Y) is certainly true: no counter-model exists.
  std::string certain = WriteProgram("certain.dlg",
                                     "e(X, Y) -> exists Z: e(Y, Z).\n"
                                     "e(a, b).\n"
                                     "?- e(X, Y).\n");
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "model " + certain), 1);
  // Every finite model of transitive closure + totality has a self-loop:
  // the exhaustive search (0 extra elements) finds nothing.
  std::string tc = WriteProgram("tc.dlg", kInfiniteTc);
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "search " + tc + " 0"), 1);
}

TEST(CliExitCodeTest, ResourceExhaustionIsThree) {
  std::string tc = WriteProgram("tc.dlg", kInfiniteTc);
  // Count budget (max_rounds) on a diverging chase.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "chase " + tc + " 5"), 3);
  // Wall-clock deadline.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH,
                "chase " + tc + " 1000000 --deadline-ms 20"), 3);
  // Memory budget.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH,
                "chase " + tc + " 1000000 --mem-budget-mb 1"), 3);
  // Governed pipeline under a deadline.
  EXPECT_EQ(RunBinary(BDDFC_CLI_PATH, "model " + tc + " --deadline-ms 1"), 3);
}

TEST(FuzzExitCodeTest, ContractIsZeroOneTwo) {
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--list-oracles"), 0);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--bogus-flag"), 2);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--inject-bug=unknown"), 2);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--inject-fault=unknown"), 2);
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH, "--oracle=no-such-oracle"), 2);
  // A small clean campaign of the governor-prefix oracle passes...
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH,
                "--runs=10 --oracle=governor-prefix --inject-fault=deadline"),
            0);
  // ...and catches the deliberately torn exhaustion path (self-test).
  EXPECT_EQ(RunBinary(BDDFC_FUZZ_PATH,
                "--runs=60 --oracle=governor-prefix --inject-fault=deadline "
                "--inject-bug=torn-exhaust --no-shrink"),
            1);
}

}  // namespace
