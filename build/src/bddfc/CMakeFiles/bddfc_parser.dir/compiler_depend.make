# Empty compiler generated dependencies file for bddfc_parser.
# This may be replaced when dependencies are built.
