#include "bddfc/chase/parallel.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bddfc/base/striped_table.h"
#include "bddfc/eval/exec.h"
#include "bddfc/obs/trace.h"

namespace bddfc {
namespace chase_internal {

namespace {

/// Shared round state every shard task buffers into. The striped tables
/// carry the dedup invariants across shards; the counters are atomics so
/// tasks never serialize on a stats mutex inside the enumeration loop.
struct SharedBuffers {
  StripedSet<Atom, AtomHash> datalog;
  StripedMap<std::string, PendingExistential> triggers;
  std::atomic<size_t> datalog_deduped{0};
  std::atomic<size_t> triggers_deduped{0};
  std::atomic<size_t> fault_seq{0};
};

/// Per-task view of the shared buffers, implementing the Sink interface of
/// HandleBinding.
struct StripedSink {
  const RoundInputs& in;
  SharedBuffers* shared;

  bool BufferDatalog(Atom g) {
    if (in.frozen.Contains(g)) return false;
    if (!shared->datalog.Insert(g)) {
      shared->datalog_deduped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  /// The run-global oblivious `fired` set is not thread-safe; filtering
  /// moves to the merge barrier. Equivalent: a delta round enumerates each
  /// (rule, binding) at most once, so within-round keys are unique and a
  /// previously-fired key is simply dropped at the barrier instead of here.
  bool ObliviousPreFilter(const std::string& key) {
    (void)key;
    return false;
  }
  void BufferTrigger(std::string key, PendingExistential pe) {
    auto less = [](const PendingExistential& a, const PendingExistential& b) {
      return TriggerLess(a, b);
    };
    if (!shared->triggers.InsertOrMin(key, std::move(pe), less)) {
      shared->triggers_deduped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  size_t FaultSeq() {
    return shared->fault_seq.fetch_add(1, std::memory_order_relaxed);
  }
};

/// The vectorized round (ChaseOptions::vectorized_sink): each shard task
/// buffers into a private VectorSink — no striped-table contention in the
/// enumeration loop — and finalizes it locally (sort-dedup + one bulk
/// containment pass per predicate). The barrier then merges the tasks'
/// sorted distinct runs, counting cross-run duplicates, and keep-min
/// dedups the raw trigger candidates — the same totals and the same
/// winners as the striped path, at any thread count.
Status EnumerateRoundParallelVectorized(const RoundInputs& in,
                                        ThreadPool* pool, RoundBuffer* buf) {
  std::mutex mu;
  ChaseStats merged;
  std::vector<DatalogSinkBuffers::Run> runs;
  std::vector<std::pair<std::string, PendingExistential>> raw_triggers;
  std::atomic<size_t> fault_seq{0};

  for (size_t ri = 0; ri < in.theory.rules().size(); ++ri) {
    const Rule& rule = in.theory.rules()[ri];
    if (rule.IsExistential() && in.options.datalog_only) continue;
    for (size_t di = 0; di < rule.body.size(); ++di) {
      // Same task-set construction as the striped path below: a pure
      // function of the workload, never of the thread count.
      bool empty_prefix = false;
      for (size_t j = 0; j < di; ++j) {
        if (in.frozen.WatermarkRows(rule.body[j].pred) == 0) {
          empty_prefix = true;
          break;
        }
      }
      if (empty_prefix) continue;
      const PredId anchor_pred = rule.body[di].pred;
      for (const RowRange& chunk :
           in.frozen.DeltaChunks(anchor_pred, kChunkRows)) {
        pool->Submit(
            static_cast<size_t>(anchor_pred), [&, ri, di, chunk]() -> Status {
              // Fail-stop fault site: the trip latches on the context and
              // ShouldStop drains the remaining tasks; returning OK keeps
              // the pool's own status channel for real cancellation. The
              // round-abort path discards the incomplete buffer.
              if (!in.ctx->CheckFault(faults::kPoolTask).ok()) {
                return Status::OK();
              }
              const auto start = std::chrono::steady_clock::now();
              obs::TraceSpan span(&in.ctx->tracer(), "chase.shard");
              ChaseStats local;
              Matcher witness(in.frozen);
              VectorSink sink(in, &local, kSinkCompactTuples, &fault_seq,
                              /*defer_oblivious=*/true);
              const Rule& r = in.theory.rules()[ri];
              const std::vector<RowBand> bands =
                  AnchorBands(in.frozen, r, di, chunk.begin, chunk.end);
              EnumerateAnchorVectorized(in, ri, di, bands, witness, &sink,
                                        &local.match);
              auto task_runs = sink.TakeDatalogRuns();
              auto task_triggers = sink.TakeRawTriggers();
              span.set_detail("r" + std::to_string(ri) + " a" +
                              std::to_string(di) + " +" +
                              std::to_string(chunk.size()) + "@" +
                              std::to_string(chunk.begin));
              local.round_ms.push_back(
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count());
              std::lock_guard<std::mutex> lock(mu);
              merged += local;  // counters sum; round_ms takes the max
              for (auto& run : task_runs) runs.push_back(std::move(run));
              for (auto& kv : task_triggers) {
                raw_triggers.push_back(std::move(kv));
              }
              return Status::OK();
            });
      }
    }
  }

  Status barrier = pool->Wait();

  // Canonical merge under the sink span: cross-run datalog dedup, keep-min
  // trigger dedup, then the deferred oblivious filter (dedup-then-filter,
  // matching the striped path's DrainSorted-then-filter order).
  obs::TraceSpan span(&in.ctx->tracer(), "chase.sink");
  // Fail-stop fault site at the barrier merge; a fire latches the context
  // and the round-abort path in chase.cc discards the merged buffer.
  (void)in.ctx->CheckFault(faults::kSinkMerge);
  buf->stats = std::move(merged);
  MergeDatalogRuns(std::move(runs), in.fault == ChaseFault::kSinkDropDup,
                   &buf->datalog, &buf->stats.datalog_deduped);
  std::vector<std::pair<std::string, PendingExistential>> deduped;
  DedupTriggers(std::move(raw_triggers), &deduped,
                &buf->stats.triggers_deduped);
  if (in.options.oblivious) {
    buf->triggers.reserve(deduped.size());
    for (auto& kv : deduped) {
      if (in.fired->insert(kv.first).second) {
        buf->triggers.push_back(std::move(kv));
      }
    }
  } else {
    buf->triggers = std::move(deduped);
  }
  return barrier;
}

}  // namespace

Status EnumerateRoundParallel(const RoundInputs& in, ThreadPool* pool,
                              RoundBuffer* buf) {
  if (in.options.vectorized_sink) {
    return EnumerateRoundParallelVectorized(in, pool, buf);
  }
  SharedBuffers shared;
  std::mutex stats_mu;
  ChaseStats merged;

  for (size_t ri = 0; ri < in.theory.rules().size(); ++ri) {
    const Rule& rule = in.theory.rules()[ri];
    if (rule.IsExistential() && in.options.datalog_only) continue;
    for (size_t di = 0; di < rule.body.size(); ++di) {
      // An anchor whose old/new split is vacuous contributes no bindings:
      // skip it by inspecting the structure only, so the task set stays a
      // pure function of the workload. (In round 1 every watermark is 0,
      // which kills all anchors but the first — the full enumeration.)
      bool empty_prefix = false;
      for (size_t j = 0; j < di; ++j) {
        if (in.frozen.WatermarkRows(rule.body[j].pred) == 0) {
          empty_prefix = true;
          break;
        }
      }
      if (empty_prefix) continue;
      const PredId anchor_pred = rule.body[di].pred;
      for (const RowRange& chunk :
           in.frozen.DeltaChunks(anchor_pred, kChunkRows)) {
        // Shard by anchor predicate: one relation's scan homes on one
        // worker (cache-warm postings) and a skewed relation's chunk
        // backlog spreads by stealing.
        pool->Submit(
            static_cast<size_t>(anchor_pred), [&, ri, di, chunk]() -> Status {
              // Fail-stop fault site (see the vectorized task above).
              if (!in.ctx->CheckFault(faults::kPoolTask).ok()) {
                return Status::OK();
              }
              const auto start = std::chrono::steady_clock::now();
              obs::TraceSpan span(&in.ctx->tracer(), "chase.shard");
              ChaseStats local;
              Matcher witness(in.frozen);
              StripedSink sink{in, &shared};
              const Rule& r = in.theory.rules()[ri];
              const std::vector<RowBand> bands =
                  AnchorBands(in.frozen, r, di, chunk.begin, chunk.end);
              const std::function<bool(const Binding&)> on_binding =
                  [&](const Binding& b) {
                    return HandleBinding(in, ri, b, witness, sink);
                  };
              if (in.plans != nullptr) {
                // Shared thread-safe plan cache; the sorted indexes were
                // refreshed at the round boundary, so shard reads race
                // nothing.
                const std::function<bool()> block_stop = [&in] {
                  return in.ctx->ShouldStop("plan block");
                };
                ExecuteBandedPlan(in.frozen, *in.plans, r.body, di, bands,
                                  on_binding, &local.match, &block_stop);
              } else {
                Matcher matcher(in.frozen, &local.match);
                matcher.EnumerateBanded(r.body, bands, {}, on_binding);
              }
              span.set_detail("r" + std::to_string(ri) + " a" +
                              std::to_string(di) + " +" +
                              std::to_string(chunk.size()) + "@" +
                              std::to_string(chunk.begin));
              local.round_ms.push_back(
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count());
              std::lock_guard<std::mutex> lock(stats_mu);
              merged += local;  // counters sum; round_ms takes the max
              return Status::OK();
            });
      }
    }
  }

  Status barrier = pool->Wait();

  // Canonical merge: drained in key order; arrival order is gone.
  buf->datalog = shared.datalog.DrainSorted();
  auto drained = shared.triggers.DrainSorted();
  if (in.options.oblivious) {
    // Deferred oblivious filter (see StripedSink::ObliviousPreFilter):
    // keys fired in an earlier round are dropped, new ones recorded.
    buf->triggers.reserve(drained.size());
    for (auto& kv : drained) {
      if (in.fired->insert(kv.first).second) {
        buf->triggers.push_back(std::move(kv));
      }
    }
  } else {
    buf->triggers = std::move(drained);
  }

  buf->stats = std::move(merged);
  buf->stats.datalog_deduped =
      shared.datalog_deduped.load(std::memory_order_relaxed);
  buf->stats.triggers_deduped =
      shared.triggers_deduped.load(std::memory_order_relaxed);
  return barrier;
}

}  // namespace chase_internal
}  // namespace bddfc
