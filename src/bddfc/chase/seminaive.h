// Semi-naive datalog saturation.
//
// The naive chase re-derives every fact each round; the semi-naive engine
// evaluates each rule only against bindings that touch at least one fact
// derived in the previous round (the classic delta rewriting). It computes
// exactly the datalog closure of a structure — the saturation step of the
// finite-model pipeline (Lemma 5) and the fixpoint of datalog-only
// theories — without inventing elements.
//
// For a rule with body atoms A_1...A_k the engine evaluates k delta
// versions with the standard old/new split: A_i ranges over the last
// round's delta, atoms before A_i over pre-round rows only, atoms after it
// over the full relation. Each binding is therefore derived exactly once —
// at its first delta atom — not once per delta atom it touches. Deltas are
// row ranges above Structure::MarkRoundBoundary watermarks, not copied
// structures.

#ifndef BDDFC_CHASE_SEMINAIVE_H_
#define BDDFC_CHASE_SEMINAIVE_H_

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// Options for semi-naive saturation.
struct SaturateOptions {
  size_t max_rounds = 100000;
  size_t max_facts = 10000000;
  /// Worker threads: 1 (default) runs the serial loop, >1 shards each
  /// round's delta scans over a thread pool, 0 = ThreadPool::
  /// DefaultThreads(). The closure is byte-identical at any value —
  /// additions are merged and applied in canonical sorted order either
  /// way.
  size_t threads = 1;
  /// Evaluate rule bodies through compiled query plans with vectorized
  /// block execution (see ChaseOptions::compiled_plans). The closure is
  /// byte-identical either way.
  bool compiled_plans = true;
  /// Buffer each round's derivations through the vectorized sink (flat
  /// per-predicate tuple buffers, sort-dedup, bulk containment — see
  /// ChaseOptions::vectorized_sink) instead of per-occurrence Contains
  /// probes and hash dedup. The closure is byte-identical either way.
  bool vectorized_sink = true;
  /// Resource governor (not owned; may be null): deadline / memory /
  /// cancellation checks at round boundaries and strided probes inside
  /// enumeration; on a trip the result is the closure prefix up to the
  /// last complete round.
  ExecutionContext* context = nullptr;
};

/// Result of a saturation run.
struct SaturateResult {
  Status status = Status::OK();  ///< ResourceExhausted when a budget trips
  Structure structure;
  size_t rounds_run = 0;
  size_t facts_derived = 0;   ///< new facts beyond the input
  size_t bindings_tried = 0;  ///< distinct rule-body matches enumerated
  ResourceReport report;      ///< resource account (see ChaseResult::report)

  explicit SaturateResult(SignaturePtr sig) : structure(std::move(sig)) {}
};

/// Computes the datalog closure of `instance` under the *datalog rules* of
/// `theory` (existential TGDs are ignored; use RunChase for those). The
/// result contains every input fact.
SaturateResult SaturateDatalog(const Theory& theory, const Structure& instance,
                               const SaturateOptions& options = {});

}  // namespace bddfc

#endif  // BDDFC_CHASE_SEMINAIVE_H_
