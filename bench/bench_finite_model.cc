// E7 — End-to-end Theorem 2 pipeline: certified counter-model size,
// attempts and chase depth versus the database size, on the Example 7
// theory with D a path of named constants. Expected shape: model size grows
// linearly with |D| plus a constant-size cycle tail (hue period), and the
// pipeline certifies at the first depth whose prefix wraps the hue period.

#include "bench_common.h"

#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

Program Example7WithPath(int path_len) {
  std::string text = R"(
    e(X, Y) -> exists Z: e(Y, Z).
    e(X, Y), e(X1, Y) -> r(X, X1).
  )";
  for (int i = 0; i < path_len; ++i) {
    text += "e(c" + std::to_string(i) + ", c" + std::to_string(i + 1) + ").\n";
  }
  return std::move(ParseProgram(text.c_str())).ValueOrDie();
}

void PrintTable() {
  bddfc_bench::Banner("E7", "Theorem 2 pipeline vs |D| (Example 7 theory)");
  std::printf("%-6s %-12s %-10s %-10s %-8s %-8s\n", "|D|", "model size",
              "attempts", "depth", "n", "status");
  for (int d : {1, 2, 4, 8, 16}) {
    Program p = Example7WithPath(d);
    ConjunctiveQuery q =
        std::move(ParseQuery("e(X, X)", p.theory.signature_ptr().get()))
            .ValueOrDie();
    PipelineOptions opts;
    opts.max_chase_depth = 64;
    FiniteModelResult r =
        ConstructFiniteCounterModel(p.theory, p.instance, q, opts);
    std::printf("%-6d %-12s %-10zu %-10zu %-8d %-8s\n", d,
                r.status.ok()
                    ? std::to_string(r.model.Domain().size()).c_str()
                    : "-",
                r.attempts.size(), r.chase_depth_used, r.n_used,
                r.status.ok() ? "ok" : StatusCodeName(r.status.code()));
  }
}

void BM_PipelineExample7(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = Example7WithPath(static_cast<int>(state.range(0)));
    ConjunctiveQuery q =
        std::move(ParseQuery("e(X, X)", p.theory.signature_ptr().get()))
            .ValueOrDie();
    state.ResumeTiming();
    PipelineOptions opts;
    opts.max_chase_depth = 64;
    FiniteModelResult r =
        ConstructFiniteCounterModel(p.theory, p.instance, q, opts);
    benchmark::DoNotOptimize(r.status.ok());
  }
}
BENCHMARK(BM_PipelineExample7)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PipelineSuccessor(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Program p = std::move(ParseProgram(R"(
      e(X, Y) -> exists Z: e(Y, Z).
      e(a, b).
    )")).ValueOrDie();
    ConjunctiveQuery q =
        std::move(ParseQuery("e(X, X)", p.theory.signature_ptr().get()))
            .ValueOrDie();
    state.ResumeTiming();
    FiniteModelResult r = ConstructFiniteCounterModel(p.theory, p.instance, q);
    benchmark::DoNotOptimize(r.status.ok());
  }
}
BENCHMARK(BM_PipelineSuccessor)->Unit(benchmark::kMillisecond);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
