file(REMOVE_RECURSE
  "CMakeFiles/bench_cq_eval.dir/bench_cq_eval.cc.o"
  "CMakeFiles/bench_cq_eval.dir/bench_cq_eval.cc.o.d"
  "bench_cq_eval"
  "bench_cq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
