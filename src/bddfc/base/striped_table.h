// Striped insert-if-absent tables for parallel deduplication.
//
// The parallel chase buffers each round's derivations from many shard
// tasks at once; the dedup invariants (one buffered copy per datalog atom,
// one pending witness per canonical head pattern) are cross-shard, so the
// buffer needs a concurrent insert-if-absent structure. A handful of
// mutex-striped hash maps is enough: contention is per-stripe, the hot
// path is one lock + one hash probe, and — unlike a lock-free design —
// the invariants are trivially TSan-clean.
//
// Determinism contract: the *set* of keys after any interleaving of
// Insert/InsertOrMin calls equals the set a serial run produces, and
// InsertOrMin keeps the Less-least value per key, so the surviving
// (key, value) pairs are independent of insertion order. DrainSorted then
// hands them out in key order — the canonical merge order the parallel
// engines apply rounds in.

#ifndef BDDFC_BASE_STRIPED_TABLE_H_
#define BDDFC_BASE_STRIPED_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace bddfc {

/// A concurrent set with insert-if-absent semantics.
template <typename Key, typename Hash = std::hash<Key>>
class StripedSet {
 public:
  explicit StripedSet(size_t stripes = 16)
      : num_stripes_(NormalizeStripes(stripes)),
        stripes_(new Stripe[num_stripes_]) {}

  /// Inserts `key`; returns true iff it was absent.
  bool Insert(const Key& key) {
    Stripe& s = StripeFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.set.insert(key).second;
  }

  /// Total keys across stripes. Not synchronized with concurrent inserts;
  /// call after the producing tasks have joined.
  size_t Size() const {
    size_t n = 0;
    for (size_t i = 0; i < num_stripes_; ++i) n += stripes_[i].set.size();
    return n;
  }

  /// Moves every key out, sorted ascending (requires Key::operator<).
  std::vector<Key> DrainSorted() {
    std::vector<Key> out;
    out.reserve(Size());
    for (size_t i = 0; i < num_stripes_; ++i) {
      for (auto it = stripes_[i].set.begin(); it != stripes_[i].set.end();) {
        out.push_back(std::move(stripes_[i].set.extract(it++).value()));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Stripe {
    std::mutex mu;
    std::unordered_set<Key, Hash> set;
  };

  static size_t NormalizeStripes(size_t stripes) {
    size_t n = 1;
    while (n < stripes && n < 256) n <<= 1;  // power of two for the mask
    return n;
  }

  Stripe& StripeFor(const Key& key) const {
    // Mix the hash before masking: stripes index on different bits than
    // the per-stripe table so one hot bucket does not pick one hot stripe.
    size_t h = Hash{}(key);
    h ^= h >> 17;
    h *= 0x9e3779b97f4a7c15ull;
    return stripes_[(h >> 8) & (num_stripes_ - 1)];
  }

  const size_t num_stripes_;
  std::unique_ptr<Stripe[]> stripes_;
};

/// A concurrent map whose InsertOrMin keeps the Less-least value per key —
/// the order-independent generalization of "first writer wins".
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMap {
 public:
  explicit StripedMap(size_t stripes = 16)
      : num_stripes_(NormalizeStripes(stripes)),
        stripes_(new Stripe[num_stripes_]) {}

  /// Inserts (key, value); when the key is present, keeps whichever value
  /// is Less-smaller (existing wins ties). Returns true iff the key was
  /// absent — the caller's dedup counter, independent of arrival order.
  template <typename Less>
  bool InsertOrMin(const Key& key, Value value, const Less& less) {
    Stripe& s = StripeFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto [it, inserted] = s.map.try_emplace(key, std::move(value));
    if (!inserted && less(value, it->second)) it->second = std::move(value);
    return inserted;
  }

  size_t Size() const {
    size_t n = 0;
    for (size_t i = 0; i < num_stripes_; ++i) n += stripes_[i].map.size();
    return n;
  }

  /// Moves every entry out, sorted by key — the canonical merge order.
  std::vector<std::pair<Key, Value>> DrainSorted() {
    std::vector<std::pair<Key, Value>> out;
    out.reserve(Size());
    for (size_t i = 0; i < num_stripes_; ++i) {
      for (auto it = stripes_[i].map.begin(); it != stripes_[i].map.end();) {
        auto node = stripes_[i].map.extract(it++);
        out.emplace_back(std::move(node.key()), std::move(node.mapped()));
      }
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

 private:
  struct Stripe {
    std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  static size_t NormalizeStripes(size_t stripes) {
    size_t n = 1;
    while (n < stripes && n < 256) n <<= 1;
    return n;
  }

  Stripe& StripeFor(const Key& key) const {
    size_t h = Hash{}(key);
    h ^= h >> 17;
    h *= 0x9e3779b97f4a7c15ull;
    return stripes_[(h >> 8) & (num_stripes_ - 1)];
  }

  const size_t num_stripes_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace bddfc

#endif  // BDDFC_BASE_STRIPED_TABLE_H_
