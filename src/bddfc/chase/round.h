// Internal round machinery shared by the chase engines (chase.cc,
// parallel.cc): trigger canonicalization, per-binding buffering, and the
// canonical round application that makes every engine's output
// byte-identical.
//
// Determinism design. Within a round, body bindings may be enumerated in
// any order — the sequential engines follow the join order the matcher
// picks, the parallel engine additionally splits delta anchors into row
// chunks, which changes the matcher's dynamic atom selection and hence the
// discovery order. Byte-identical results therefore cannot rely on
// discovery order anywhere. Instead:
//
//   * buffered datalog additions are a *set*; ApplyRound inserts them
//     sorted by (predicate, argument tuple);
//   * pending existential triggers are keyed by the canonical PatternKey;
//     per key the TriggerLess-least candidate wins (not the first
//     discovered), and ApplyRound fires keys in sorted order — so null
//     invention order, null provenance, and row order are all functions of
//     the round's *set* of derivations;
//   * the dedup counters are occurrence counts minus distinct counts,
//     which are order-independent too.
//
// The headers under chase/ expose this as an implementation detail, not
// API: only chase.cc and parallel.cc include it.

#ifndef BDDFC_CHASE_ROUND_H_
#define BDDFC_CHASE_ROUND_H_

#include <cassert>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/eval/plan.h"

namespace bddfc {
namespace chase_internal {

/// A pending existential trigger: the rule's head with frontier variables
/// grounded and existential variables still symbolic. Keyed for per-round
/// deduplication (one witness per demanded head pattern).
struct PendingExistential {
  int rule_index;
  std::vector<Atom> head_pattern;    // grounded except existential vars
  std::vector<TermId> existentials;  // the symbolic witness variables
};

/// Canonical "which same-key trigger wins" order: least (rule index, head
/// pattern, existential list). Any total order works for correctness —
/// same-key triggers demand the same witnesses up to renaming — but a
/// *value* order makes the winner independent of enumeration order, which
/// keep-first was not.
inline bool TriggerLess(const PendingExistential& a,
                        const PendingExistential& b) {
  if (a.rule_index != b.rule_index) return a.rule_index < b.rule_index;
  if (a.head_pattern != b.head_pattern) return a.head_pattern < b.head_pattern;
  return a.existentials < b.existentials;
}

/// Canonical key of a head pattern, invariant under existential-variable
/// renaming and atom reordering. Defined in round.cc.
std::string PatternKey(const std::vector<Atom>& pattern);

/// Adds a fact to `out` and records its birth round. Returns true when new.
bool AddFactTracked(ChaseResult* out, PredId pred,
                    const std::vector<TermId>& args, int round);

/// One round's buffered derivations, evaluated against the frozen
/// Chase^{i-1} snapshot. Engines fill it (sequentially or from shard
/// tasks); ApplyRound consumes it in canonical order.
struct RoundBuffer {
  /// Distinct head atoms not present in the frozen structure (unsorted).
  std::vector<Atom> datalog;
  /// Unique-key pending triggers, each key's TriggerLess-least candidate.
  std::vector<std::pair<std::string, PendingExistential>> triggers;
  /// Counters and per-round timing merged across the producing tasks.
  ChaseStats stats;

  bool empty() const { return datalog.empty() && triggers.empty(); }
};

/// The read-only inputs one round's enumeration runs against.
struct RoundInputs {
  const Theory& theory;
  const Structure& frozen;  ///< Chase^{i-1}; not mutated until ApplyRound
  const ChaseOptions& options;
  ExecutionContext* ctx;  ///< never null (RunChase installs a local one)
  /// Oblivious-mode run-global (rule, body-binding) dedup. The sequential
  /// engines filter against it during enumeration; the parallel engine at
  /// the merge barrier (equivalent: a delta-driven round enumerates each
  /// binding at most once, so within-round keys are unique).
  std::unordered_set<std::string>* fired;
  /// Per-run compiled-plan cache (thread-safe); nullptr = evaluate rule
  /// bodies through the interpretive Matcher instead. Witness-existence
  /// probes always stay on the Matcher: their patterns are grounded per
  /// binding (caching would never hit) and dominated by point lookups.
  PlanCache* plans = nullptr;
};

/// Serializes the oblivious-chase firing key of (rule `ri`, binding `b`).
std::string ObliviousKey(size_t ri, const Rule& rule, const Binding& b);

/// Per-binding buffering logic, shared verbatim by the sequential and
/// parallel engines; `Sink` supplies the buffer operations:
///
///   bool BufferDatalog(Atom g);            // false = duplicate (counted)
///   bool ObliviousPreFilter(const std::string& key);  // true = skip now
///   void BufferTrigger(std::string key, PendingExistential pe);
///   size_t FaultSeq();                     // kSkipTriggerDedup suffixes
///
/// Returns false to stop the enumeration (governor trip).
template <typename Sink>
bool HandleBinding(const RoundInputs& in, size_t ri, const Binding& b,
                   const Matcher& witness, Sink& sink) {
  // Strided governor probe: aborts this task's enumeration on a trip; the
  // post-enumeration check discards the buffered round.
  if (in.ctx->ShouldStop("chase enumerate")) return false;
  const Rule& rule = in.theory.rules()[ri];
  auto ground = [&b](const Atom& a) {
    Atom g = a;
    for (TermId& t : g.args) {
      if (IsVar(t)) {
        auto it = b.find(t);
        if (it != b.end()) t = it->second;
      }
    }
    return g;
  };
  if (!rule.IsExistential()) {
    for (const Atom& h : rule.head) {
      Atom g = ground(h);
      assert(g.IsGround() && "datalog rule with unbound head variable");
      if (in.frozen.Contains(g)) continue;
      sink.BufferDatalog(std::move(g));
    }
    return true;
  }
  // Existential TGD: the non-oblivious check — is the head already
  // witnessed in Chase^i under this frontier binding?
  std::vector<Atom> pattern;
  pattern.reserve(rule.head.size());
  for (const Atom& h : rule.head) pattern.push_back(ground(h));
  std::string key;
  if (in.options.oblivious) {
    // Blind chase: one witness per (rule, body binding), ever.
    key = ObliviousKey(ri, rule, b);
    if (sink.ObliviousPreFilter(key)) return true;
  } else {
    if (witness.Exists(pattern, {})) return true;
    key = PatternKey(pattern);
    if (in.options.fault == ChaseFault::kSkipTriggerDedup) {
      // Injected bug: make every key unique so same-pattern triggers stop
      // collapsing to one witness.
      key += "#" + std::to_string(sink.FaultSeq());
    }
  }
  PendingExistential pe;
  pe.rule_index = static_cast<int>(ri);
  pe.head_pattern = std::move(pattern);
  pe.existentials = rule.ExistentialVariables();
  sink.BufferTrigger(std::move(key), std::move(pe));
  return true;
}

/// Bands for evaluating `rule`'s body with delta anchor `di` confined to
/// rows [begin, end) of its relation: atoms before the anchor stay on
/// pre-round rows, atoms after it range over the full relation — the
/// standard old/new split, with the anchor band narrowed to one chunk for
/// sharded scans (the sequential engines pass the whole delta).
std::vector<RowBand> AnchorBands(const Structure& s, const Rule& rule,
                                 size_t di, uint32_t begin, uint32_t end);

/// Sequential enumeration of one round into `buf`: delta-anchored
/// (ChaseEngine::kDelta) or full re-enumeration (kNaive).
void EnumerateRoundSequential(const RoundInputs& in, bool delta,
                              RoundBuffer* buf);

/// Applies a completed round's buffer in canonical order: datalog
/// additions sorted by (pred, args), then triggers in key order, inventing
/// nulls and recording provenance. Returns the number of facts added.
size_t ApplyRound(RoundBuffer* buf, size_t round, ChaseResult* out);

}  // namespace chase_internal
}  // namespace bddfc

#endif  // BDDFC_CHASE_ROUND_H_
