file(REMOVE_RECURSE
  "CMakeFiles/bddfc_rewrite.dir/rewrite/rewriter.cc.o"
  "CMakeFiles/bddfc_rewrite.dir/rewrite/rewriter.cc.o.d"
  "libbddfc_rewrite.a"
  "libbddfc_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
