// Parallel sharded round enumeration for the chase (ChaseEngine::kParallel).
//
// One chase round fans out as independent scan tasks: for every rule and
// every delta anchor position, the anchor relation's delta is split into
// fixed-size row chunks (Structure::DeltaChunks) and each chunk becomes one
// ThreadPool task. Tasks share a striped insert-if-absent buffer
// (base/striped_table.h) for the round's derivations; the pool's Wait() is
// the round barrier, after which the buffer drains in canonical sorted
// order into the same RoundBuffer/ApplyRound path the sequential engines
// use.
//
// Determinism: the task *set* depends only on the structure (watermarks +
// row counts + a fixed chunk size), never on the thread count; chunks
// partition the round's bindings exactly (each binding's grounded anchor
// row lies in exactly one chunk); and the merge keeps the TriggerLess-least
// candidate per trigger key regardless of arrival order. Hence the applied
// round — and therefore the whole run, including row order, null naming
// and provenance — is byte-identical to the sequential delta engine at any
// thread count.

#ifndef BDDFC_CHASE_PARALLEL_H_
#define BDDFC_CHASE_PARALLEL_H_

#include "bddfc/base/status.h"
#include "bddfc/base/thread_pool.h"
#include "bddfc/chase/round.h"

namespace bddfc {
namespace chase_internal {

/// Rows per sharded anchor chunk. Fixed (never derived from the thread
/// count) so the task decomposition — and with it every per-task stat —
/// is a function of the workload alone.
inline constexpr uint32_t kChunkRows = 1024;

/// Enumerates one round's derivations into `buf` using `pool`, blocking
/// until the round barrier. Returns the pool's aggregated task status:
/// non-OK means tasks were drained unrun (cancellation) and the round is
/// incomplete — the caller must discard it even if the context has not
/// latched a trip yet. Counters in buf->stats are summed across tasks;
/// buf->stats.round_ms holds one entry, the *maximum* task wall time of
/// the round (not the sum — shards overlap).
Status EnumerateRoundParallel(const RoundInputs& in, ThreadPool* pool,
                              RoundBuffer* buf);

}  // namespace chase_internal
}  // namespace bddfc

#endif  // BDDFC_CHASE_PARALLEL_H_
