// The Theorem 2 pipeline (§3): a certified finite counter-model
// construction for binary BDD theories.
//
// Given a binary theory T₀, an instance D and a Boolean CQ Q with
// Chase(D, T₀) ⊭ Q, the pipeline builds a finite M with M ⊨ D, T₀ and
// M ⊭ Q following the paper's proof:
//
//   1. hide the query:  T := T₀ + (Q ⇒ ∃z F(y, z))            (♠4, §3.1)
//   2. normalize heads and separate TGPs                       (♠5, §3.1)
//   3. chase D to a depth-L prefix; abort with "query certainly true" if
//      F ever appears                                          (§1.1)
//   4. extract the skeleton S(D, T) — a forest by Lemma 3      (§3.2)
//   5. color S naturally with window m = κ (the max rewriting width of
//      rule bodies, §3.3), quotient by ≡_n                     (§2, §4)
//   6. saturate the quotient with the datalog rules only — Lemma 5 says
//      no existential TGD needs to fire                        (§3.3)
//   7. certify: M ⊇ D, M ⊨ T₀, M ⊭ Q; on failure retry with a deeper
//      chase prefix and a larger n.
//
// Certification makes the pipeline sound even though the chase prefix is
// finite and the rewriter is budgeted: an accepted model is checked
// end-to-end, and Lemma 2 + Theorem 2 guarantee the search terminates for
// genuinely BDD binary theories.

#ifndef BDDFC_FINITEMODEL_PIPELINE_H_
#define BDDFC_FINITEMODEL_PIPELINE_H_

#include <string>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"
#include "bddfc/rewrite/rewriter.h"

namespace bddfc {

/// Budgets and knobs for the pipeline.
struct PipelineOptions {
  /// Chase-depth schedule: starts at `initial_chase_depth`, doubles up to
  /// `max_chase_depth`.
  /// Normalization layers cost a few chase rounds per witness level, so
  /// the depth schedule must comfortably exceed (rounds-per-level × hue
  /// period); max_chase_facts backstops exponential theories.
  size_t initial_chase_depth = 8;
  size_t max_chase_depth = 128;
  size_t max_chase_facts = 200000;
  /// Quotient type width schedule n = initial_n .. max_n.
  int initial_n = 2;
  int max_n = 4;
  /// Override for the coloring window m (κ of §3.3); -1 = compute via the
  /// rewriter, capped at `max_m` for tractability (certification covers
  /// the gap).
  int m_override = -1;
  int max_m = 4;
  RewriteOptions rewrite_options{.max_depth = 10, .max_queries = 2000};
  /// Budget for type-partition / conservativity pattern checks.
  size_t max_patterns = 2000000;
  /// Run the (informative) conservativity check on each attempt.
  bool check_conservativity = false;
  /// Datalog saturation budget.
  size_t max_saturation_rounds = 512;
  /// Runtime invariant checking (DESIGN.md §2.14), forwarded to every
  /// chase/saturation call. Violations surface as kInternal — the
  /// supervisor retries them under the degradation ladder.
  ParanoiaLevel paranoia = ParanoiaLevel::kOff;
  /// Retry budget of the chase supervisor: attempts after the first that
  /// a kInternal failure (injected fault, paranoia trip) may consume.
  /// 0 = fail on the first kInternal (attempts still run isolated).
  size_t supervisor_max_retries = 6;
  /// Resource governor (not owned; may be null). The pipeline carves the
  /// byte budget into phase sub-accounts (chase half, rewriter a quarter,
  /// the rest shared), runs every engine call under a child context so the
  /// per-phase count budgets above stay retryable (the depth-doubling loop
  /// *depends* on a chase max_rounds trip being local to one attempt), and
  /// aborts between phases on a governed trip (deadline/memory/cancel)
  /// with ResourceExhausted, a populated report, and the partial chase
  /// prefix in FiniteModelResult::partial_chase.
  ExecutionContext* context = nullptr;
};

/// One pipeline attempt, for diagnostics.
struct PipelineAttempt {
  size_t chase_depth = 0;
  int n = 0;
  size_t skeleton_facts = 0;
  int quotient_size = 0;
  bool used_exact_partition = false;
  bool conservative = false;  ///< only meaningful with check_conservativity
  /// True when the ♠2 check tripped a budget: `conservative` is then
  /// meaningless (it is NOT silently reported as "not conservative").
  bool conservativity_inconclusive = false;
  bool certified = false;
  std::string failure;  ///< empty when certified
};

/// Outcome of the pipeline.
struct FiniteModelResult {
  /// OK: `model` is a certified finite model of D, T₀ avoiding Q.
  /// FailedPrecondition: Chase(D, T₀) ⊨ Q — no counter-model exists.
  /// Unknown: the per-attempt count budgets ran dry before certification
  /// (the explicit attempt list says which; the run itself completed).
  /// ResourceExhausted: the governor tripped (deadline/memory/cancel) —
  /// `report` says what and `partial_chase` holds the best prefix.
  Status status = Status::OK();
  Structure model;
  bool query_certainly_true = false;
  int kappa = 0;        ///< the m actually used for the coloring
  int n_used = 0;
  size_t chase_depth_used = 0;
  std::vector<PipelineAttempt> attempts;
  /// On a governor trip: the last chase prefix computed before the trip
  /// (facts up to its last complete round); empty otherwise.
  Structure partial_chase;
  size_t partial_chase_rounds = 0;
  /// Resource account of the whole run (phase notes, peak bytes, slack).
  ResourceReport report;

  explicit FiniteModelResult(SignaturePtr sig)
      : model(sig), partial_chase(std::move(sig)) {}
};

/// Runs the pipeline. `theory` must be binary and single-head (apply the
/// reductions of §5.1–5.3 first otherwise); the elements of `instance` are
/// named constants (§3.2). The theory's signature object is shared and
/// extended (hidden/normalized/color predicates).
FiniteModelResult ConstructFiniteCounterModel(
    const Theory& theory, const Structure& instance,
    const ConjunctiveQuery& query, const PipelineOptions& options = {});

}  // namespace bddfc

#endif  // BDDFC_FINITEMODEL_PIPELINE_H_
