# Empty compiler generated dependencies file for bddfc_workload.
# This may be replaced when dependencies are built.
