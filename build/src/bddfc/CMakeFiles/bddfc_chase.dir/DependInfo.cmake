
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bddfc/chase/chase.cc" "src/bddfc/CMakeFiles/bddfc_chase.dir/chase/chase.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_chase.dir/chase/chase.cc.o.d"
  "/root/repo/src/bddfc/chase/seminaive.cc" "src/bddfc/CMakeFiles/bddfc_chase.dir/chase/seminaive.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_chase.dir/chase/seminaive.cc.o.d"
  "/root/repo/src/bddfc/chase/skeleton.cc" "src/bddfc/CMakeFiles/bddfc_chase.dir/chase/skeleton.cc.o" "gcc" "src/bddfc/CMakeFiles/bddfc_chase.dir/chase/skeleton.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/bddfc/CMakeFiles/bddfc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
