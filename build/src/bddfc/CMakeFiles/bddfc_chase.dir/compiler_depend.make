# Empty compiler generated dependencies file for bddfc_chase.
# This may be replaced when dependencies are built.
