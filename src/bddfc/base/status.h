// Lightweight Status / Result error-handling primitives (Arrow/RocksDB idiom).
//
// The library does not throw on fallible operations; functions that can fail
// return Status (no value) or Result<T> (value or error).

#ifndef BDDFC_BASE_STATUS_H_
#define BDDFC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bddfc {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (parse errors, bad arities, ...).
  kNotFound,          ///< A named entity does not exist.
  kAlreadyExists,     ///< A named entity is being redefined inconsistently.
  kResourceExhausted, ///< A configured budget (facts, depth, time) ran out.
  kFailedPrecondition,///< The operation's structural preconditions fail.
  kUnimplemented,     ///< Reserved for staged features.
  kInternal,          ///< Invariant violation inside the library.
  kUnknown,           ///< A semi-decision procedure could not decide in budget.
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: OK or a code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Move-oriented; access via
/// ValueOrDie()/value() only after checking ok().
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  /// Returns the value; aborts (assert) if this Result holds an error.
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;           // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace bddfc

/// Propagates a non-OK Status out of the enclosing function.
#define BDDFC_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::bddfc::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression, binding the value or propagating error.
#define BDDFC_ASSIGN_OR_RETURN(lhs, expr)      \
  auto BDDFC_CONCAT_(_res_, __LINE__) = (expr);\
  if (!BDDFC_CONCAT_(_res_, __LINE__).ok())    \
    return BDDFC_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(BDDFC_CONCAT_(_res_, __LINE__)).value();

#define BDDFC_CONCAT_IMPL_(a, b) a##b
#define BDDFC_CONCAT_(a, b) BDDFC_CONCAT_IMPL_(a, b)

#endif  // BDDFC_BASE_STATUS_H_
