#include "bddfc/chase/seminaive.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "bddfc/base/striped_table.h"
#include "bddfc/base/thread_pool.h"
#include "bddfc/chase/parallel.h"
#include "bddfc/chase/round.h"
#include "bddfc/eval/exec.h"
#include "bddfc/eval/match.h"
#include "bddfc/eval/plan.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

SaturateResult SaturateDatalog(const Theory& theory, const Structure& instance,
                               const SaturateOptions& options) {
  SaturateResult out(instance.signature_ptr());

  ExecutionContext local_ctx;
  ExecutionContext* ctx =
      options.context != nullptr ? options.context : &local_ctx;
  obs::Tracer& tracer = ctx->tracer();
  obs::TraceSpan run_span(&tracer, "saturate.run");
  if (options.context != nullptr) out.structure.SetAccountant(&ctx->memory());
  auto finalize = [&] {
    out.structure.SetAccountant(nullptr);
    run_span.set_detail("round " + std::to_string(out.rounds_run) + ", " +
                        std::to_string(out.structure.NumFacts()) + " facts");
    out.report = ctx->report();
    out.report.partial_result =
        !out.status.ok() && out.structure.NumFacts() > 0;
    // Per-run registry (a session's under the serving layer); no static
    // handle cache — handles are registry-specific.
    obs::MetricsRegistry& reg = ctx->metrics_registry();
    if (reg.enabled()) {
      reg.GetCounter("bddfc.saturate.runs")->Add(1);
      reg.GetCounter("bddfc.saturate.rounds")->Add(out.rounds_run);
      reg.GetCounter("bddfc.saturate.facts_derived")->Add(out.facts_derived);
      reg.GetCounter("bddfc.saturate.bindings_tried")
          ->Add(out.bindings_tried);
    }
  };

  std::vector<const Rule*> rules;
  for (const Rule& r : theory.rules()) {
    if (r.IsDatalog()) rules.push_back(&r);
  }

  const size_t threads = options.threads != 0 ? options.threads
                                              : ThreadPool::DefaultThreads();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    pool->SetCancelToken(ctx->cancel_token());
  }

  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    out.structure.AddFact(p, row);
  });
  for (TermId e : instance.Domain()) out.structure.AddDomainElement(e);

  // Compiled query plans: one cache per run (thread-safe — shard tasks
  // share it). The sorted indexes refresh at round starts, the run's only
  // single-threaded points.
  PlanCache plan_cache;
  const std::function<bool()> block_stop = [ctx] {
    return ctx->ShouldStop("plan block");
  };

  // The delta of each round is the row range above the last watermark — no
  // copied structures. Before the first MarkRoundBoundary all watermarks
  // are 0, so round 1 sees the whole input as its delta.
  size_t facts_at_mark = 0;
  while (out.structure.NumFacts() > facts_at_mark) {
    Status cp = ctx->CheckPoint("saturate round start");
    if (!cp.ok()) {
      out.status = std::move(cp);
      finalize();
      return out;
    }
    // The vectorized sink's bulk containment gallops the sorted indexes,
    // so it needs them fresh even when plans are off.
    if (options.compiled_plans || options.vectorized_sink) {
      out.structure.RefreshIndexes();
    }
    if (++out.rounds_run > options.max_rounds) {
      out.status =
          ctx->RecordExhaustion(ResourceKind::kRounds,
                                "saturation exceeded max_rounds=" +
                                    std::to_string(options.max_rounds));
      finalize();
      return out;
    }
    obs::TraceSpan round_span(&tracer, "saturate.round");
    std::vector<Atom> additions;
    Status barrier = Status::OK();

    if (pool == nullptr && options.vectorized_sink) {
      // Vectorized serial round: raw appends into flat per-predicate
      // buffers; dedup and containment happen once, in the sorted bulk
      // pass at the end of the round. Compiled datalog rules ground their
      // heads block-at-a-time straight from the executor's slot blocks.
      chase_internal::DatalogSinkBuffers sink(
          out.structure, chase_internal::kSinkCompactTuples,
          /*drop_dup_groups=*/false);
      Matcher matcher(out.structure);
      for (const Rule* rule : rules) {
        for (size_t di = 0; di < rule->body.size(); ++di) {
          const Atom& anchor = rule->body[di];
          const uint32_t wm = out.structure.WatermarkRows(anchor.pred);
          if (wm >= out.structure.NumFacts(anchor.pred)) {
            continue;  // empty delta for this anchor
          }
          const std::vector<RowBand> bands = chase_internal::AnchorBands(
              out.structure, *rule, di, wm, UINT32_MAX);
          if (options.compiled_plans) {
            std::shared_ptr<const QueryPlan> plan =
                plan_cache.Get(out.structure, rule->body, di);
            const std::vector<TermId> slot_vars =
                PlanSlotVars(*plan, rule->body);
            const std::vector<chase_internal::HeadTemplate> heads =
                chase_internal::BuildHeadTemplates(*rule, slot_vars);
            MatchStats ms;
            auto on_block = [&](const SlotBlock& blk) {
              for (size_t r = 0; r < blk.num_rows; ++r) {
                const TermId* slots = blk.rows + r * blk.width;
                for (const chase_internal::HeadTemplate& h : heads) {
                  TermId* dst = sink.Append(h.pred, h.arity);
                  for (size_t pos = 0; pos < h.arity; ++pos) {
                    const chase_internal::HeadTemplate::Arg& a = h.args[pos];
                    dst[pos] = a.is_const ? a.value : slots[a.slot];
                  }
                }
              }
              return true;
            };
            ExecutePlanBlocks(out.structure, *plan, rule->body, &bands,
                              on_block, &ms, &block_stop);
            out.bindings_tried += ms.bindings_tried;
          } else {
            const std::function<bool(const Binding&)> on_binding =
                [&](const Binding& b) {
                  if (ctx->ShouldStop("saturate enumerate")) return false;
                  ++out.bindings_tried;
                  for (const Atom& h : rule->head) {
                    TermId* dst = sink.Append(h.pred, h.args.size());
                    for (size_t pos = 0; pos < h.args.size(); ++pos) {
                      const TermId t = h.args[pos];
                      dst[pos] = IsVar(t) ? b.at(t) : t;
                    }
                  }
                  return true;
                };
            matcher.EnumerateBanded(rule->body, bands, {}, on_binding);
          }
        }
      }
      obs::TraceSpan sink_span(&tracer, "saturate.sink");
      sink.FinishInto(&additions);
    } else if (pool == nullptr) {
      std::unordered_set<Atom, AtomHash> buffered;
      Matcher matcher(out.structure);
      for (const Rule* rule : rules) {
        for (size_t di = 0; di < rule->body.size(); ++di) {
          const Atom& anchor = rule->body[di];
          const uint32_t wm = out.structure.WatermarkRows(anchor.pred);
          if (wm >= out.structure.NumFacts(anchor.pred)) {
            continue;  // empty delta for this anchor
          }
          // Old/new split (chase_internal::AnchorBands): atoms before the
          // anchor are confined to pre-round rows, the anchor to the
          // delta, atoms after it range over the full relation. Each
          // binding is derived once, at its first delta atom — not once
          // per delta anchor it happens to touch.
          const std::vector<RowBand> bands = chase_internal::AnchorBands(
              out.structure, *rule, di, wm, UINT32_MAX);
          const std::function<bool(const Binding&)> on_binding =
              [&](const Binding& b) {
                if (ctx->ShouldStop("saturate enumerate")) return false;
                ++out.bindings_tried;
                for (const Atom& h : rule->head) {
                  Atom g = h;
                  for (TermId& t : g.args) {
                    if (IsVar(t)) t = b.at(t);
                  }
                  if (!out.structure.Contains(g) && buffered.insert(g).second) {
                    additions.push_back(std::move(g));
                  }
                }
                return true;
              };
          if (options.compiled_plans) {
            ExecuteBandedPlan(out.structure, plan_cache, rule->body, di,
                              bands, on_binding, nullptr, &block_stop);
          } else {
            matcher.EnumerateBanded(rule->body, bands, {}, on_binding);
          }
        }
      }
    } else if (options.vectorized_sink) {
      // Sharded vectorized round: each (rule, anchor, delta-chunk) task
      // buffers into a private sink and finalizes it locally (sort-dedup
      // plus one bulk containment pass); the barrier merges the tasks'
      // sorted distinct runs, counting nothing twice, so the closure —
      // and bindings_tried — match the serial loop at any thread count.
      std::mutex mu;
      std::vector<chase_internal::DatalogSinkBuffers::Run> runs;
      std::atomic<size_t> bindings{0};
      const Structure& frozen = out.structure;
      for (const Rule* rule : rules) {
        for (size_t di = 0; di < rule->body.size(); ++di) {
          const PredId anchor_pred = rule->body[di].pred;
          for (const RowRange& chunk : frozen.DeltaChunks(
                   anchor_pred, chase_internal::kChunkRows)) {
            pool->Submit(
                static_cast<size_t>(anchor_pred),
                [&, rule, di, chunk]() -> Status {
                  obs::TraceSpan span(&tracer, "saturate.shard");
                  chase_internal::DatalogSinkBuffers sink(
                      frozen, chase_internal::kSinkCompactTuples,
                      /*drop_dup_groups=*/false);
                  size_t local_bindings = 0;
                  const std::vector<RowBand> bands =
                      chase_internal::AnchorBands(frozen, *rule, di,
                                                  chunk.begin, chunk.end);
                  if (options.compiled_plans) {
                    std::shared_ptr<const QueryPlan> plan =
                        plan_cache.Get(frozen, rule->body, di);
                    const std::vector<TermId> slot_vars =
                        PlanSlotVars(*plan, rule->body);
                    const std::vector<chase_internal::HeadTemplate> heads =
                        chase_internal::BuildHeadTemplates(*rule, slot_vars);
                    MatchStats ms;
                    auto on_block = [&](const SlotBlock& blk) {
                      for (size_t r = 0; r < blk.num_rows; ++r) {
                        const TermId* slots = blk.rows + r * blk.width;
                        for (const chase_internal::HeadTemplate& h : heads) {
                          TermId* dst = sink.Append(h.pred, h.arity);
                          for (size_t pos = 0; pos < h.arity; ++pos) {
                            const chase_internal::HeadTemplate::Arg& a =
                                h.args[pos];
                            dst[pos] =
                                a.is_const ? a.value : slots[a.slot];
                          }
                        }
                      }
                      return true;
                    };
                    ExecutePlanBlocks(frozen, *plan, rule->body, &bands,
                                      on_block, &ms, &block_stop);
                    local_bindings += ms.bindings_tried;
                  } else {
                    const std::function<bool(const Binding&)> on_binding =
                        [&](const Binding& b) {
                          if (ctx->ShouldStop("saturate enumerate")) {
                            return false;
                          }
                          ++local_bindings;
                          for (const Atom& h : rule->head) {
                            TermId* dst =
                                sink.Append(h.pred, h.args.size());
                            for (size_t pos = 0; pos < h.args.size();
                                 ++pos) {
                              const TermId t = h.args[pos];
                              dst[pos] = IsVar(t) ? b.at(t) : t;
                            }
                          }
                          return true;
                        };
                    Matcher matcher(frozen);
                    matcher.EnumerateBanded(rule->body, bands, {},
                                            on_binding);
                  }
                  auto task_runs = sink.TakeRuns();
                  bindings.fetch_add(local_bindings,
                                     std::memory_order_relaxed);
                  std::lock_guard<std::mutex> lock(mu);
                  for (auto& run : task_runs) runs.push_back(std::move(run));
                  return Status::OK();
                });
          }
        }
      }
      barrier = pool->Wait();
      out.bindings_tried += bindings.load(std::memory_order_relaxed);
      obs::TraceSpan sink_span(&tracer, "saturate.sink");
      size_t cross_run_dups = 0;
      chase_internal::MergeDatalogRuns(std::move(runs),
                                       /*drop_dup_groups=*/false, &additions,
                                       &cross_run_dups);
    } else {
      // Sharded round: every (rule, anchor, delta-chunk) is one pool task
      // buffering into a striped set. Chunks partition the round's
      // bindings exactly and the merge below is sorted, so the closure —
      // and bindings_tried — match the serial loop at any thread count.
      StripedSet<Atom, AtomHash> buffered;
      std::atomic<size_t> bindings{0};
      const Structure& frozen = out.structure;
      for (const Rule* rule : rules) {
        for (size_t di = 0; di < rule->body.size(); ++di) {
          const PredId anchor_pred = rule->body[di].pred;
          for (const RowRange& chunk : frozen.DeltaChunks(
                   anchor_pred, chase_internal::kChunkRows)) {
            pool->Submit(
                static_cast<size_t>(anchor_pred),
                [&, rule, di, chunk]() -> Status {
                  obs::TraceSpan span(&tracer, "saturate.shard");
                  size_t local_bindings = 0;
                  const std::vector<RowBand> bands =
                      chase_internal::AnchorBands(frozen, *rule, di,
                                                  chunk.begin, chunk.end);
                  const std::function<bool(const Binding&)> on_binding =
                      [&](const Binding& b) {
                        if (ctx->ShouldStop("saturate enumerate")) {
                          return false;
                        }
                        ++local_bindings;
                        for (const Atom& h : rule->head) {
                          Atom g = h;
                          for (TermId& t : g.args) {
                            if (IsVar(t)) t = b.at(t);
                          }
                          if (!frozen.Contains(g)) buffered.Insert(g);
                        }
                        return true;
                      };
                  if (options.compiled_plans) {
                    ExecuteBandedPlan(frozen, plan_cache, rule->body, di,
                                      bands, on_binding, nullptr,
                                      &block_stop);
                  } else {
                    Matcher matcher(frozen);
                    matcher.EnumerateBanded(rule->body, bands, {},
                                            on_binding);
                  }
                  bindings.fetch_add(local_bindings,
                                     std::memory_order_relaxed);
                  return Status::OK();
                });
          }
        }
      }
      barrier = pool->Wait();
      out.bindings_tried += bindings.load(std::memory_order_relaxed);
      additions = buffered.DrainSorted();
    }

    if (ctx->Exhausted() || !barrier.ok()) {
      // Tripped mid-enumeration (or queued shard tasks were drained unrun
      // by cancellation): discard the buffered (incomplete) round so the
      // structure is the closure prefix of complete rounds, and roll the
      // counter back — rounds_run only counts completed rounds, so a
      // replay bounded by it reproduces this exact structure.
      --out.rounds_run;
      Status abort_status = ctx->CheckPoint("saturate round abort");
      out.status =
          !abort_status.ok() ? std::move(abort_status) : std::move(barrier);
      finalize();
      return out;
    }

    facts_at_mark = out.structure.NumFacts();
    out.structure.MarkRoundBoundary();
    // Canonical apply order: row order of the closure is a function of the
    // round's derivation *set*, so serial and sharded runs (and any thread
    // count) build byte-identical structures.
    std::sort(additions.begin(), additions.end());
    for (const Atom& g : additions) {
      if (out.structure.AddFact(g)) ++out.facts_derived;
    }
    if (out.structure.NumFacts() > options.max_facts) {
      out.status = ctx->RecordExhaustion(
          ResourceKind::kFacts, "saturation exceeded max_facts=" +
                                    std::to_string(options.max_facts));
      finalize();
      return out;
    }
  }
  finalize();
  return out;
}

}  // namespace bddfc
