// The §5.5 "notorious example": a theory that is NOT finitely controllable
// although it defines no ordering.
//
//   e(x, y) ⇒ ∃z e(y, z)
//   r(x, y), e(x, x'), e(y, z), e(z, y') ⇒ r(x', y')
//   D = { e(a0, a1), r(a0, a0) },  Φ = ∃x, y  e(x, y) ∧ r(y, y).
//
// The chase never satisfies Φ (r "runs twice as fast" along the infinite
// chain and never returns to the diagonal behind an edge), yet EVERY finite
// model satisfies it: any finite model folds the chain into a lasso, and
// pumping r around the cycle hits a reflexive r on an element with an
// e-predecessor. This program demonstrates both halves computationally:
// a deep chase prefix avoids Φ, and exhaustive search over small domains
// finds no Φ-avoiding model (while Φ-satisfying models exist).
//
// Build & run:  ./build/examples/non_fc_witness

#include <cstdio>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/model_search.h"
#include "bddfc/workload/paper_examples.h"

int main() {
  using namespace bddfc;

  Program p = Section55();
  std::printf("theory:\n%s\nΦ = e(x, y) ∧ r(y, y)\n\n",
              p.theory.ToString().c_str());

  // Half 1: the chase avoids Φ at every prefix depth.
  for (size_t depth = 4; depth <= 16; depth *= 2) {
    ChaseOptions opts;
    opts.max_rounds = depth;
    ChaseResult chase = RunChase(p.theory, p.instance, opts);
    std::printf("chase depth %-3zu: %4zu facts, Φ %s\n", depth,
                chase.structure.NumFacts(),
                Satisfies(chase.structure, p.queries[0]) ? "HOLDS" : "fails");
  }

  // Half 2: no finite model avoids Φ (exhaustive over tiny domains), while
  // models in general exist.
  ModelSearchOptions opts;
  opts.max_extra_elements = 1;
  ModelSearchResult avoiding =
      FindFiniteModel(p.theory, p.instance, &p.queries[0], opts);
  std::printf("\nΦ-avoiding finite model over |D|+1 elements: %s (%zu "
              "structures enumerated)\n",
              avoiding.found ? "FOUND (unexpected!)" : "none",
              avoiding.structures_checked);
  ModelSearchResult any = FindFiniteModel(p.theory, p.instance, nullptr, opts);
  if (any.found) {
    std::printf("some finite model (necessarily satisfying Φ):\n%s",
                any.model->ToString().c_str());
  }
  std::printf("\nconclusion: T is not FC — and the BDD/FC conjecture is "
              "consistent with this, because T is not BDD (the r-rule is a "
              "transitivity-like datalog rule with unbounded rewritings).\n");
  return 0;
}
