// Very Treelike DAGs (§2.7, Def. 10–11) and predecessor sets P(e), P_k(e).

#ifndef BDDFC_CLASSES_VTDAG_H_
#define BDDFC_CLASSES_VTDAG_H_

#include <string>
#include <unordered_set>

#include "bddfc/core/structure.h"

namespace bddfc {

/// P(e) (Def. 10): {e} for constants; {e} ∪ {x ∈ C_non : R(x, e) for some
/// binary R} for non-constants.
std::unordered_set<TermId> PSet(const Structure& c, TermId e);

/// P_k(e) (Def. 13): P_0(e) = P(e); P_k(e) = ∪_{a ∈ P_{k-1}(e)} P(a).
std::unordered_set<TermId> PkSet(const Structure& c, TermId e, int k);

/// Result of the VTDAG check (Def. 11).
struct VtdagReport {
  bool is_vtdag = false;
  bool nulls_acyclic = false;          ///< C_non is a DAG
  bool unique_predecessor = false;     ///< per relation, at most one non-constant pred
  bool predecessors_form_clique = false; ///< P(e) is a directed clique
  std::string violation;               ///< reason when not a VTDAG
};

/// Checks whether `c` is a Very Treelike DAG. Requires a binary signature.
VtdagReport CheckVtdag(const Structure& c);

}  // namespace bddfc

#endif  // BDDFC_CLASSES_VTDAG_H_
