// Per-tenant session state (DESIGN.md §2.15).
//
// A Session owns everything that used to live in process-wide singletons,
// scoped to one tenant: the cumulative metrics registry its requests fold
// into, the trace ring its spans record to, and the fault registry its
// chaos plans arm. Requests themselves publish into a request-scoped
// registry first (engines resolve it through the ExecutionContext's
// RunContext) and the server folds that snapshot into BOTH the session's
// cumulative registry and the server totals — so per-session counters sum
// to the server's by construction, the invariant the loadgen and the
// serve tests reconcile.

#ifndef BDDFC_SERVE_SESSION_H_
#define BDDFC_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "bddfc/base/faults.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc::serve {

/// One tenant's server-side state. Created on first request, lives for
/// the server's lifetime (sessions are small: registries plus a trace
/// ring). Thread-safe: every member is.
struct Session {
  explicit Session(std::string tenant_name, bool tracing,
                   size_t trace_capacity)
      : tenant(std::move(tenant_name)) {
    // Cumulative registry: always on — MergeFrom ignores enabled(), but
    // direct session-level counters (sheds) go through the enabled path.
    metrics.set_enabled(true);
    if (tracing) tracer.Enable(trace_capacity);
  }

  const std::string tenant;
  /// Cumulative over the session's completed requests.
  obs::MetricsRegistry metrics;
  /// The session's span ring (enabled only when the server traces).
  obs::Tracer tracer;
  /// The session's chaos plans; disarmed by default. A plan armed here
  /// fires only in THIS session's requests — including the parser site.
  FaultRegistry faults;
  /// Requests accepted (not shed) for this session.
  std::atomic<uint64_t> requests{0};
};

}  // namespace bddfc::serve

#endif  // BDDFC_SERVE_SESSION_H_
