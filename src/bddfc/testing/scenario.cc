#include "bddfc/testing/scenario.h"

#include <string>
#include <utility>
#include <vector>

#include "bddfc/parser/parser.h"
#include "bddfc/parser/printer.h"
#include "bddfc/workload/generators.h"

namespace bddfc {

namespace {

/// Predicates of the signature with arity >= 1 (fact/query candidates).
std::vector<PredId> NonNullaryPredicates(const Signature& sig) {
  std::vector<PredId> out;
  for (PredId p = 0; p < sig.num_predicates(); ++p) {
    if (sig.arity(p) >= 1) out.push_back(p);
  }
  return out;
}

std::vector<PredId> BinaryPredicates(const Signature& sig) {
  std::vector<PredId> out;
  for (PredId p = 0; p < sig.num_predicates(); ++p) {
    if (sig.arity(p) == 2) out.push_back(p);
  }
  return out;
}

/// Adds `num_facts` random facts over fresh constants c0..c_{num_consts-1}.
void AddRandomFacts(Scenario* s, Rng* rng, int num_consts, int num_facts) {
  std::vector<TermId> consts;
  consts.reserve(num_consts);
  for (int i = 0; i < num_consts; ++i) {
    consts.push_back(s->sig->AddConstant("c" + std::to_string(i)));
  }
  std::vector<PredId> preds = NonNullaryPredicates(*s->sig);
  if (preds.empty()) return;
  for (int i = 0; i < num_facts; ++i) {
    PredId p = preds[rng->Uniform(preds.size())];
    std::vector<TermId> args;
    args.reserve(s->sig->arity(p));
    for (int a = 0; a < s->sig->arity(p); ++a) {
      args.push_back(consts[rng->Uniform(consts.size())]);
    }
    s->instance.AddFact(p, args);
  }
}

/// Attaches 1–3 Boolean queries: path/star/cycle over a binary predicate
/// when one exists, a single fresh-variable atom otherwise; occasionally
/// one variable is pinned to an instance constant.
void AddRandomQueries(Scenario* s, Rng* rng) {
  std::vector<PredId> preds = NonNullaryPredicates(*s->sig);
  std::vector<PredId> binary = BinaryPredicates(*s->sig);
  if (preds.empty()) return;
  int num_queries = 1 + static_cast<int>(rng->Uniform(3));
  for (int qi = 0; qi < num_queries; ++qi) {
    ConjunctiveQuery q;
    uint64_t shape = rng->Uniform(4);
    if (!binary.empty() && shape < 3) {
      PredId p = binary[rng->Uniform(binary.size())];
      int k = 1 + static_cast<int>(rng->Uniform(3));
      q = shape == 0 ? PathQuery(p, k)
          : shape == 1 ? StarQuery(p, k)
                       : CycleQuery(p, k);
    } else {
      PredId p = preds[rng->Uniform(preds.size())];
      std::vector<TermId> args;
      for (int a = 0; a < s->sig->arity(p); ++a) args.push_back(MakeVar(a));
      q.atoms.push_back(Atom(p, std::move(args)));
    }
    // Pin one variable to a constant now and then: constants exercise the
    // rewriter's applicability conditions and the hom filters.
    const std::vector<TermId>& domain = s->instance.Domain();
    if (!domain.empty() && rng->Uniform(4) == 0) {
      std::vector<TermId> vars = q.Variables();
      if (!vars.empty()) {
        TermId victim = vars[rng->Uniform(vars.size())];
        TermId value = domain[rng->Uniform(domain.size())];
        for (Atom& a : q.atoms) {
          for (TermId& t : a.args) {
            if (t == victim) t = value;
          }
        }
      }
    }
    s->queries.push_back(std::move(q));
  }
}

}  // namespace

const std::vector<std::string>& ScenarioFamilies() {
  static const std::vector<std::string> kFamilies = {
      "acyclic-binary", "guarded", "linear", "graph-datalog"};
  return kFamilies;
}

Scenario GenerateScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.seed = seed;
  size_t family = rng.Uniform(ScenarioFamilies().size());
  s.family = ScenarioFamilies()[family];
  switch (family) {
    case 0: {  // weakly acyclic, binary: chase terminates on every instance
      int preds = 3 + static_cast<int>(rng.Uniform(3));
      int tgds = 2 + static_cast<int>(rng.Uniform(4));
      int datalog = 1 + static_cast<int>(rng.Uniform(4));
      s.theory =
          RandomAcyclicBinaryTheory(s.sig, preds, tgds, datalog, rng.Next());
      AddRandomFacts(&s, &rng, 3 + static_cast<int>(rng.Uniform(3)),
                     3 + static_cast<int>(rng.Uniform(6)));
      break;
    }
    case 1: {  // guarded, arity up to 3
      int max_arity = 2 + static_cast<int>(rng.Uniform(2));
      int rules = 3 + static_cast<int>(rng.Uniform(4));
      s.theory = RandomGuardedTheory(s.sig, max_arity, rules, rng.Next());
      AddRandomFacts(&s, &rng, 2 + static_cast<int>(rng.Uniform(3)),
                     3 + static_cast<int>(rng.Uniform(5)));
      break;
    }
    case 2: {  // linear (always BDD; the chase may diverge)
      int preds = 3 + static_cast<int>(rng.Uniform(3));
      int rules = 4 + static_cast<int>(rng.Uniform(5));
      s.theory = RandomLinearTheory(s.sig, preds, rules, rng.Next());
      AddRandomFacts(&s, &rng, 2 + static_cast<int>(rng.Uniform(3)),
                     3 + static_cast<int>(rng.Uniform(5)));
      break;
    }
    default: {  // plain-datalog graph closure (terminating, null elements)
      int num_relations = 1 + static_cast<int>(rng.Uniform(2));
      int nodes = 5 + static_cast<int>(rng.Uniform(6));
      int edges = 6 + static_cast<int>(rng.Uniform(10));
      s.instance =
          RandomGraph(s.sig, nodes, edges, rng.Next(), num_relations);
      s.theory = Theory(s.sig);
      std::vector<PredId> rels = BinaryPredicates(*s.sig);
      TermId x = MakeVar(0), y = MakeVar(1), z = MakeVar(2);
      PredId closed = rels[rng.Uniform(rels.size())];
      Status st = s.theory.AddRule(
          Rule({Atom(closed, {x, y}), Atom(closed, {y, z})},
               {Atom(closed, {x, z})}));
      (void)st;
      if (rels.size() > 1 && rng.Uniform(2) == 0) {
        PredId from = rels[0], to = rels[1];
        st = s.theory.AddRule(Rule({Atom(from, {x, y})}, {Atom(to, {x, y})}));
        (void)st;
      }
      break;
    }
  }
  AddRandomQueries(&s, &rng);
  return s;
}

std::string ScenarioToText(const Scenario& s) {
  return ToProgramText(s.theory, &s.instance, &s.queries);
}

Result<Scenario> ParseScenario(std::string_view text, std::string family,
                               uint64_t seed) {
  BDDFC_ASSIGN_OR_RETURN(Program p, ParseProgram(text));
  Scenario s(p.theory.signature_ptr());
  s.theory = std::move(p.theory);
  s.instance = std::move(p.instance);
  s.queries = std::move(p.queries);
  s.family = std::move(family);
  s.seed = seed;
  return s;
}

Result<Scenario> CloneScenario(const Scenario& s) {
  return ParseScenario(ScenarioToText(s), s.family, s.seed);
}

}  // namespace bddfc
