// E9 — Brute-force model search: structures enumerated versus domain size,
// on Example 1 (a model exists: the search exits early) and the §5.5
// non-FC theory with the query Φ excluded (no model exists: the search
// exhausts the space — the empirical non-FC witness).

#include "bench_common.h"

#include "bddfc/finitemodel/model_search.h"
#include "bddfc/workload/paper_examples.h"

namespace {

using namespace bddfc;

void PrintTable() {
  bddfc_bench::Banner("E9", "model search cost and non-FC witness");
  std::printf("%-14s %-8s %-10s %-16s\n", "input", "extra", "found",
              "structures");
  {
    Program p = Example1();
    ConjunctiveQuery q =
        std::move(ParseQuery("u(X, Y)", p.theory.signature_ptr().get()))
            .ValueOrDie();
    for (int extra = 0; extra <= 2; ++extra) {
      ModelSearchOptions opts;
      opts.max_extra_elements = extra;
      ModelSearchResult r = FindFiniteModel(p.theory, p.instance, &q, opts);
      std::printf("%-14s %-8d %-10s %-16zu\n", "example1-¬u", extra,
                  r.found ? "yes" : "no", r.structures_checked);
    }
  }
  {
    Program p = Section55();
    for (int extra = 0; extra <= 1; ++extra) {
      ModelSearchOptions opts;
      opts.max_extra_elements = extra;
      ModelSearchResult r =
          FindFiniteModel(p.theory, p.instance, &p.queries[0], opts);
      std::printf("%-14s %-8d %-10s %-16zu\n", "sec5.5-¬Φ", extra,
                  r.found ? "yes (BUG)" : "no", r.structures_checked);
    }
    // Without the avoidance constraint a model is found quickly.
    ModelSearchOptions opts;
    opts.max_extra_elements = 1;
    ModelSearchResult r = FindFiniteModel(p.theory, p.instance, nullptr, opts);
    std::printf("%-14s %-8d %-10s %-16zu\n", "sec5.5-any", 1,
                r.found ? "yes" : "no", r.structures_checked);
  }
}

void BM_SearchExample1(benchmark::State& state) {
  Program p = Example1();
  ConjunctiveQuery q =
      std::move(ParseQuery("u(X, Y)", p.theory.signature_ptr().get()))
          .ValueOrDie();
  ModelSearchOptions opts;
  opts.max_extra_elements = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ModelSearchResult r = FindFiniteModel(p.theory, p.instance, &q, opts);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_SearchExample1)->Arg(0)->Arg(1);

void BM_SearchSection55Refutation(benchmark::State& state) {
  Program p = Section55();
  ModelSearchOptions opts;
  opts.max_extra_elements = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ModelSearchResult r =
        FindFiniteModel(p.theory, p.instance, &p.queries[0], opts);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_SearchSection55Refutation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BDDFC_BENCH_MAIN(PrintTable)
