# Empty dependencies file for bddfc_finitemodel.
# This may be replaced when dependencies are built.
