#include "bddfc/finitemodel/model_search.h"

#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"

namespace bddfc {

namespace {

/// All tuples over `domain` of length `arity`, in lexicographic order.
void EnumerateTuples(const std::vector<TermId>& domain, int arity,
                     std::vector<std::vector<TermId>>* out) {
  std::vector<TermId> tuple(arity);
  std::vector<size_t> idx(arity, 0);
  while (true) {
    for (int i = 0; i < arity; ++i) tuple[i] = domain[idx[i]];
    out->push_back(tuple);
    int pos = arity - 1;
    while (pos >= 0 && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  if (arity == 0) out->clear();  // 0-ary handled separately
}

}  // namespace

ModelSearchResult FindFiniteModel(const Theory& theory,
                                  const Structure& instance,
                                  const ConjunctiveQuery* avoid,
                                  const ModelSearchOptions& options) {
  ModelSearchResult result;
  ExecutionContext local_ctx;
  ExecutionContext* ctx =
      options.context != nullptr ? options.context : &local_ctx;

  obs::TraceSpan span(&ctx->tracer(), "model_search.run");
  // Publishes on every return path (the search exits from several places)
  // into the run's registry — resolved here, not at publication, so the
  // destructor never touches process-global state.
  struct Publish {
    const ModelSearchResult& r;
    obs::MetricsRegistry& reg;
    ~Publish() {
      if (reg.enabled()) {
        reg.GetCounter("bddfc.model_search.runs")->Add(1);
        reg.GetCounter("bddfc.model_search.structures_checked")
            ->Add(r.structures_checked);
      }
    }
  } publish{result, ctx->metrics_registry()};
  SignaturePtr sig = theory.signature_ptr();

  for (int extra = 0; extra <= options.max_extra_elements; ++extra) {
    std::vector<TermId> domain = instance.Domain();
    for (int i = 0; i < extra; ++i) {
      domain.push_back(sig->AddNull("ms"));
    }
    if (domain.empty()) continue;

    // Optional atoms: every possible ground atom not already in D.
    std::vector<Atom> optional;
    bool too_big = false;
    for (PredId p = 0; p < sig->num_predicates() && !too_big; ++p) {
      if (sig->IsColor(p)) continue;
      std::vector<std::vector<TermId>> tuples;
      if (sig->arity(p) == 0) {
        tuples.push_back({});
      } else {
        EnumerateTuples(domain, sig->arity(p), &tuples);
      }
      for (auto& t : tuples) {
        if (!instance.Contains(p, t)) {
          optional.push_back(Atom(p, std::move(t)));
        }
        if (optional.size() > 62) {
          too_big = true;
          break;
        }
      }
    }
    if (too_big ||
        (optional.size() < 62 &&
         (uint64_t{1} << optional.size()) > options.max_structures)) {
      result.status = Status::ResourceExhausted(
          "model search space too large at extra=" + std::to_string(extra));
      return result;
    }

    uint64_t limit = uint64_t{1} << optional.size();
    for (uint64_t mask = 0; mask < limit; ++mask) {
      if (ctx->ShouldStop("model search")) {
        result.status = ctx->CheckPoint("model search abort");
        return result;
      }
      if (++result.structures_checked > options.max_structures) {
        result.status = ctx->RecordExhaustion(
            ResourceKind::kStructures,
            "model search exceeded max_structures=" +
                std::to_string(options.max_structures));
        return result;
      }
      Structure candidate(sig);
      instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
        candidate.AddFact(p, row);
      });
      for (TermId e : domain) candidate.AddDomainElement(e);
      for (size_t i = 0; i < optional.size(); ++i) {
        if (mask & (uint64_t{1} << i)) candidate.AddFact(optional[i]);
      }
      if (avoid != nullptr && Satisfies(candidate, *avoid)) continue;
      if (CheckModel(candidate, theory) != std::nullopt) continue;
      result.found = true;
      result.model = std::move(candidate);
      return result;
    }
  }
  return result;
}

}  // namespace bddfc
