// Text format for Datalog∃ programs, instances and queries.
//
// Syntax (one statement per '.', '%' or '#' start line comments):
//
//   edge(a, b).                                 % fact (lowercase constants)
//   edge(X, Y) -> exists Z: edge(Y, Z).         % existential TGD
//   edge(X, Y), edge(Y, Z) -> edge(X, Z).       % datalog rule
//   ?- edge(X, Y), u(Y).                        % Boolean CQ
//
// Variables start with an uppercase letter; constants with a lowercase
// letter or digit. A predicate or constant whose name would not lex that
// way (uppercase-leading, the keyword 'exists', punctuation, …) is written
// double-quoted with \" and \\ escapes: edge("Foo", "exists"). The 'exists'
// clause is optional — any head variable not occurring in the body is
// existential. Multi-head rules write the head as a comma-separated
// conjunction. 0-ary atoms are written without parentheses as `goal`.

#ifndef BDDFC_PARSER_PARSER_H_
#define BDDFC_PARSER_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "bddfc/base/status.h"
#include "bddfc/core/query.h"
#include "bddfc/core/structure.h"
#include "bddfc/core/theory.h"

namespace bddfc {

/// Result of parsing a program text: rules, ground facts and queries, all
/// over one shared signature.
struct Program {
  Theory theory;
  Structure instance;
  std::vector<ConjunctiveQuery> queries;

  explicit Program(SignaturePtr sig)
      : theory(sig), instance(std::move(sig)) {}
};

class FaultRegistry;

/// Parses a full program. If `sig` is null a fresh signature is created.
/// `faults` hosts the parser's chaos site; null falls back to the
/// process-global registry (serving sessions pass their own so one
/// tenant's fault plan never fires in another's parse).
Result<Program> ParseProgram(std::string_view text, SignaturePtr sig = nullptr,
                             FaultRegistry* faults = nullptr);

/// Parses a single conjunctive query body, e.g. "edge(X, Y), u(Y)".
/// Predicates/constants are interned into `sig`. Variable ids are assigned
/// from *next_var by name (and *next_var is advanced).
Result<ConjunctiveQuery> ParseQuery(std::string_view text, Signature* sig,
                                    int32_t* next_var);

/// Convenience: parse a query against a fresh variable space starting at 0.
Result<ConjunctiveQuery> ParseQuery(std::string_view text, Signature* sig);

}  // namespace bddfc

#endif  // BDDFC_PARSER_PARSER_H_
