// bddfc command-line tool.
//
// Usage:
//   bddfc chase    <program.dlg> [max_rounds] [--chase-engine=delta|naive|
//                  parallel] [--threads N] [--no-plans] [--no-vector-sink]
//   bddfc rewrite  <program.dlg> [--threads N] [--no-prune]
//   bddfc classify <program.dlg> [--threads N] [--no-prune]
//   bddfc model    <program.dlg>            (Theorem 2 counter-model per query)
//   bddfc search   <program.dlg> [extra]    (brute-force counter-model)
//
// chase runs the selected round engine; --chase-engine=parallel shards
// each round's delta scans over --threads N workers (default: hardware
// concurrency) with byte-identical output at any N. --no-plans evaluates
// rule bodies through the interpretive matcher instead of compiled query
// plans (the A/B reference path; output is byte-identical either way).
// --no-vector-sink buffers each round's derivations through the
// per-binding hash sink instead of the vectorized sort-dedup sink (also
// byte-identical; the escape hatch for A/B timing and bug isolation).
// rewrite rewrites each ?- query and prints the per-level RewriteStats;
// classify prints class membership + the BDD probe. --threads N fans the
// independent rewritings of the BDD probe over N workers (the output is
// identical for any N); --no-prune disables homomorphic-subsumption
// pruning (the pre-PR exploration, for A/B comparison).
//
// Resource governance (all commands): --deadline-ms N bounds wall-clock
// time, --mem-budget-mb N bounds accounted memory, and SIGINT (Ctrl-C)
// or SIGTERM requests cooperative cancellation. On any of the three the
// command stops at the next round/level/frontier boundary, prints the
// best partial result plus the resource report, and exits with code 3.
//
// Robustness (chase/model): --paranoia=off|cheap|full promotes the
// chase's test-only invariants to runtime checks (DESIGN.md §2.14);
// a violation is retried by the supervisor under progressively more
// conservative engine configurations before surfacing as an error.
//
// Observability (all commands, off by default — see obs/):
//   --trace-out=FILE    record stage/round/level spans and write Chrome
//                       trace_event JSON (chrome://tracing, Perfetto)
//   --metrics-out=FILE  enable the metrics registry and write the final
//                       snapshot as JSON
//
// Exit codes:
//   0  success (chase/rewrite/classify completed; counter-model found)
//   1  negative semantic outcome (query certainly true, no model found,
//      no counter-model within the explicit count budgets)
//   2  usage or parse error
//   3  resource exhausted (deadline / memory budget / cancelled / count
//      cap) — a partial result and the resource report were printed
//
// The program file uses the Datalog± syntax of parser/parser.h: facts,
// rules (with optional 'exists V:' clauses) and '?-' queries.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bddfc/base/governor.h"
#include "bddfc/chase/chase.h"
#include "bddfc/chase/supervisor.h"
#include "bddfc/classes/recognizers.h"
#include "bddfc/eval/match.h"
#include "bddfc/finitemodel/model_search.h"
#include "bddfc/finitemodel/pipeline.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/obs/trace.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"

namespace {

using namespace bddfc;

// Exit codes of the documented contract (see the header comment).
enum ExitCode {
  kExitOk = 0,
  kExitNegative = 1,
  kExitUsage = 2,
  kExitExhausted = 3,
};

int Usage() {
  std::fprintf(stderr,
               "usage: bddfc <chase|rewrite|classify|model|search> "
               "<program.dlg> [arg] [--threads N] [--no-prune]\n"
               "             [--chase-engine=delta|naive|parallel] "
               "[--no-plans] [--no-vector-sink]\n"
               "             [--deadline-ms N] [--mem-budget-mb N]\n"
               "             [--paranoia=off|cheap|full]\n"
               "             [--trace-out=FILE] [--metrics-out=FILE]\n"
               "exit codes: 0 ok, 1 negative outcome, 2 usage/parse error, "
               "3 resource exhausted\n");
  return kExitUsage;
}

/// Writes the trace and/or metrics exports requested by --trace-out /
/// --metrics-out. An unwritable path is reported on stderr; the command's
/// own exit code stands unless it was 0 (a silent half-success would make
/// CI consume a missing artifact).
int WriteObservability(const char* trace_out, const char* metrics_out,
                       int rc) {
  if (trace_out != nullptr) {
    std::ofstream out(trace_out);
    if (out) out << obs::Tracer::Global().ExportChromeJson() << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n", trace_out);
      if (rc == kExitOk) rc = kExitUsage;
    }
  }
  if (metrics_out != nullptr) {
    std::ofstream out(metrics_out);
    if (out) out << obs::MetricsRegistry::Global().Snapshot().ToJson() << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                   metrics_out);
      if (rc == kExitOk) rc = kExitUsage;
    }
  }
  return rc;
}

// SIGINT and SIGTERM flip the shared CancelToken; every engine drains at
// its next cooperative check and the command prints its partial result
// (and exits 3, like any other governed trip). A second delivery of the
// same signal kills the process the default way.
CancelToken* g_cancel = nullptr;

extern "C" void OnSignal(int sig) {
  if (g_cancel != nullptr) g_cancel->Cancel();
  std::signal(sig, SIG_DFL);
}

Result<Program> Load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + std::string(path) + "'");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return ParseProgram(buf.str());
}

void PrintReport(const ResourceReport& report) {
  std::printf("resource report: %s\n", report.ToString().c_str());
}

/// Exit code for a finished command: governed/count trips map to 3, other
/// errors to 1, OK to `ok_code`.
int ExitFor(const Status& status, int ok_code = kExitOk) {
  if (status.ok()) return ok_code;
  return status.code() == StatusCode::kResourceExhausted ? kExitExhausted
                                                         : kExitNegative;
}

int CmdChase(Program& p, size_t max_rounds, ChaseEngine engine,
             size_t threads, bool compiled_plans, bool vectorized_sink,
             ParanoiaLevel paranoia, ExecutionContext* ctx) {
  ChaseOptions opts;
  opts.max_rounds = max_rounds;
  opts.engine = engine;
  opts.threads = threads;
  opts.compiled_plans = compiled_plans;
  opts.vectorized_sink = vectorized_sink;
  opts.paranoia = paranoia;
  // Supervised: a paranoia trip (or injected fault, under a test harness)
  // is retried on the degradation ladder before surfacing as an error.
  SupervisorOptions sup;
  sup.context = ctx;
  SupervisedChase s = RunChaseSupervised(p.theory, p.instance, opts, sup);
  ChaseResult& r = s.result;
  if (s.recovered) {
    std::string rungs;
    for (const std::string& d : s.degradations) {
      rungs += (rungs.empty() ? "" : ", ") + d;
    }
    std::printf("supervisor: recovered after %zu attempts (degraded: %s)\n",
                s.attempts, rungs.empty() ? "none" : rungs.c_str());
  }
  std::printf("rounds=%zu facts=%zu nulls=%zu fixpoint=%s status=%s\n",
              r.rounds_run, r.structure.NumFacts(), r.nulls_created,
              r.fixpoint_reached ? "yes" : "no", r.status.ToString().c_str());
  double total_ms = 0;
  for (double ms : r.stats.round_ms) total_ms += ms;
  std::printf("stats: bindings=%zu postings_hits=%zu postings_misses=%zu "
              "rows_scanned=%zu triggers_deduped=%zu datalog_deduped=%zu "
              "sink_candidates=%zu sink_contained=%zu chase_ms=%.2f\n",
              r.stats.match.bindings_tried, r.stats.match.postings_hits,
              r.stats.match.postings_misses, r.stats.match.rows_scanned,
              r.stats.triggers_deduped, r.stats.datalog_deduped,
              r.stats.sink_candidates, r.stats.sink_contained, total_ms);
  std::printf("%s", r.structure.ToString().c_str());
  for (size_t i = 0; i < p.queries.size(); ++i) {
    std::printf("query %zu: %s\n", i,
                Satisfies(r.structure, p.queries[i]) ? "certain (at this "
                                                       "depth)"
                                                     : "not derived");
  }
  if (!r.status.ok()) PrintReport(r.report);
  return ExitFor(r.status);
}

void PrintRewriteStats(const RewriteStats& stats) {
  std::printf("  stats: candidates=%zu key_deduped=%zu "
              "subsumption_pruned=%zu hom_checks=%zu hom_checks_skipped=%zu "
              "wall_ms=%.2f accum_ms=%.2f\n",
              stats.TotalCandidates(), stats.TotalKeyDeduped(),
              stats.TotalSubsumptionPruned(), stats.hom_checks,
              stats.hom_checks_skipped, stats.TotalWallMs(),
              stats.TotalAccumMs());
  for (size_t d = 0; d < stats.levels.size(); ++d) {
    const RewriteLevelStats& l = stats.levels[d];
    std::printf("    level %zu: candidates=%zu key_deduped=%zu "
                "subsumption_pruned=%zu accum_ms=%.2f\n",
                d + 1, l.candidates, l.key_deduped, l.subsumption_pruned,
                l.accum_ms);
  }
}

int CmdRewrite(Program& p, const RewriteOptions& opts) {
  if (p.queries.empty()) {
    std::printf("no ?- queries in the program\n");
    return kExitNegative;
  }
  int rc = kExitOk;
  for (size_t i = 0; i < p.queries.size(); ++i) {
    RewriteResult r = RewriteQuery(p.theory, p.queries[i], opts);
    std::printf("query %zu: %s\n  disjuncts=%zu depth=%zu generated=%zu\n",
                i, r.status.ToString().c_str(), r.rewriting.size(),
                r.depth_reached, r.queries_generated);
    std::printf("  %s\n", UcqToString(r.rewriting, p.theory.sig()).c_str());
    std::printf("  D |= rewriting: %s\n",
                SatisfiesUcq(p.instance, r.rewriting) ? "true" : "false");
    PrintRewriteStats(r.stats);
    if (r.status.code() == StatusCode::kResourceExhausted) {
      PrintReport(r.report);
      rc = kExitExhausted;
    }
  }
  return rc;
}

int CmdClassify(Program& p, const RewriteOptions& opts) {
  std::printf("rules=%zu predicates=%d max_arity=%d\n", p.theory.size(),
              p.theory.sig().num_predicates(), p.theory.sig().MaxArity());
  std::printf("binary:          %s\n", IsBinaryTheory(p.theory) ? "yes" : "no");
  std::printf("linear:          %s\n", IsLinear(p.theory) ? "yes" : "no");
  std::printf("guarded:         %s\n", IsGuarded(p.theory) ? "yes" : "no");
  StickyReport sticky = CheckSticky(p.theory);
  std::printf("sticky:          %s%s%s\n", sticky.is_sticky ? "yes" : "no",
              sticky.violation.empty() ? "" : "  -- ",
              sticky.violation.c_str());
  std::printf("weakly acyclic:  %s\n",
              IsWeaklyAcyclic(p.theory) ? "yes" : "no");
  std::printf("theorem-3 heads: %s\n",
              HasSingleFrontierVariableHeads(p.theory) ? "yes" : "no");
  BddProbeResult probe = ProbeBdd(p.theory, opts);
  std::printf("BDD probe:       %s (kappa=%d, max rewrite depth=%zu, "
              "generated=%zu, disjuncts=%zu, pruned=%zu, hom_checks=%zu/%zu "
              "skipped)\n",
              probe.certified ? "certified" : "unknown at budget",
              probe.kappa, probe.max_depth_seen, probe.queries_generated,
              probe.total_disjuncts, probe.stats.TotalSubsumptionPruned(),
              probe.stats.hom_checks, probe.stats.hom_checks_skipped);
  if (probe.status.code() == StatusCode::kResourceExhausted) {
    std::printf("BDD probe stopped early: %s\n",
                probe.status.ToString().c_str());
    if (opts.context != nullptr) PrintReport(opts.context->report());
    return kExitExhausted;
  }
  return kExitOk;
}

int CmdModel(Program& p, ParanoiaLevel paranoia, ExecutionContext* ctx) {
  if (p.queries.empty()) {
    std::printf("no ?- queries in the program\n");
    return kExitNegative;
  }
  int rc = kExitOk;
  for (size_t i = 0; i < p.queries.size(); ++i) {
    PipelineOptions opts;
    opts.context = ctx;
    opts.paranoia = paranoia;
    FiniteModelResult r =
        ConstructFiniteCounterModel(p.theory, p.instance, p.queries[i], opts);
    if (r.status.ok()) {
      std::printf("query %zu: counter-model with %zu elements "
                  "(kappa=%d n=%d depth=%zu):\n%s",
                  i, r.model.Domain().size(), r.kappa, r.n_used,
                  r.chase_depth_used, r.model.ToString().c_str());
    } else if (r.query_certainly_true) {
      std::printf("query %zu: certainly true (no counter-model exists)\n", i);
      if (rc == kExitOk) rc = kExitNegative;
    } else if (r.status.code() == StatusCode::kResourceExhausted) {
      std::printf("query %zu: %s\n", i, r.status.ToString().c_str());
      if (r.report.partial_result) {
        std::printf("partial chase prefix: %zu facts after %zu complete "
                    "round(s)\n%s",
                    r.partial_chase.NumFacts(), r.partial_chase_rounds,
                    r.partial_chase.ToString().c_str());
      }
      PrintReport(r.report);
      return kExitExhausted;  // governed trip: later queries would re-trip
    } else {
      std::printf("query %zu: %s\n", i, r.status.ToString().c_str());
      rc = kExitNegative;
    }
  }
  return rc;
}

int CmdSearch(Program& p, int extra, ExecutionContext* ctx) {
  const ConjunctiveQuery* avoid =
      p.queries.empty() ? nullptr : &p.queries[0];
  ModelSearchOptions opts;
  opts.max_extra_elements = extra;
  opts.context = ctx;
  ModelSearchResult r = FindFiniteModel(p.theory, p.instance, avoid, opts);
  std::printf("checked %zu structures; %s\n", r.structures_checked,
              r.status.ToString().c_str());
  if (r.found) {
    std::printf("model:\n%s", r.model->ToString().c_str());
    return kExitOk;
  }
  if (r.status.code() == StatusCode::kResourceExhausted) {
    PrintReport(ctx->report());
    return kExitExhausted;
  }
  std::printf("no finite model%s within the domain budget\n",
              avoid != nullptr ? " avoiding the first query" : "");
  return kExitNegative;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  Result<Program> loaded = Load(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return kExitUsage;
  }
  Program& p = loaded.value();
  const char* cmd = argv[1];
  // Flags shared by rewrite/classify; positional extras stay for the rest.
  RewriteOptions ropts;
  ChaseEngine chase_engine = ChaseEngine::kDelta;
  size_t chase_threads = 0;
  bool chase_plans = true;
  bool chase_vsink = true;
  ParanoiaLevel paranoia = ParanoiaLevel::kOff;
  const char* positional = nullptr;
  double deadline_ms = -1;
  double mem_budget_mb = -1;
  const char* trace_out = nullptr;
  const char* metrics_out = nullptr;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      ropts.threads = std::strtoul(argv[++i], nullptr, 10);
      chase_threads = ropts.threads;
    } else if (std::strncmp(argv[i], "--chase-engine=", 15) == 0) {
      const char* name = argv[i] + 15;
      if (std::strcmp(name, "delta") == 0) {
        chase_engine = ChaseEngine::kDelta;
      } else if (std::strcmp(name, "naive") == 0) {
        chase_engine = ChaseEngine::kNaive;
      } else if (std::strcmp(name, "parallel") == 0) {
        chase_engine = ChaseEngine::kParallel;
      } else {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--no-prune") == 0) {
      ropts.prune_subsumed = false;
    } else if (std::strcmp(argv[i], "--no-plans") == 0) {
      chase_plans = false;
    } else if (std::strcmp(argv[i], "--no-vector-sink") == 0) {
      chase_vsink = false;
    } else if (std::strncmp(argv[i], "--paranoia=", 11) == 0) {
      if (!ParanoiaLevelFromName(argv[i] + 11, &paranoia)) return Usage();
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
      if (*trace_out == '\0') return Usage();
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
      if (*metrics_out == '\0') return Usage();
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      char* end = nullptr;
      deadline_ms = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || deadline_ms < 0) return Usage();
    } else if (std::strcmp(argv[i], "--mem-budget-mb") == 0 && i + 1 < argc) {
      char* end = nullptr;
      mem_budget_mb = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || mem_budget_mb < 0) return Usage();
    } else {
      positional = argv[i];
    }
  }

  // One governed context for the whole command; SIGINT flips its token.
  ExecutionContext ctx;
  if (deadline_ms >= 0) ctx.SetDeadlineAfterMs(deadline_ms);
  if (mem_budget_mb >= 0) {
    ctx.SetMemoryLimitBytes(static_cast<size_t>(mem_budget_mb * 1024 * 1024));
  }
  static CancelToken cancel = ctx.cancel_token();
  g_cancel = &cancel;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  ropts.context = &ctx;

  // Observability stays off unless asked for: enabling costs a ring
  // allocation (trace) and per-run publication (metrics).
  if (trace_out != nullptr) obs::Tracer::Global().Enable();
  if (metrics_out != nullptr) obs::MetricsRegistry::Global().set_enabled(true);

  int rc;
  if (std::strcmp(cmd, "chase") == 0) {
    rc = CmdChase(p,
                  positional != nullptr ? std::strtoul(positional, nullptr, 10)
                                        : 32,
                  chase_engine, chase_threads, chase_plans, chase_vsink,
                  paranoia, &ctx);
  } else if (std::strcmp(cmd, "rewrite") == 0) {
    rc = CmdRewrite(p, ropts);
  } else if (std::strcmp(cmd, "classify") == 0) {
    rc = CmdClassify(p, ropts);
  } else if (std::strcmp(cmd, "model") == 0) {
    rc = CmdModel(p, paranoia, &ctx);
  } else if (std::strcmp(cmd, "search") == 0) {
    rc = CmdSearch(p, positional != nullptr ? std::atoi(positional) : 1,
                   &ctx);
  } else {
    return Usage();
  }
  return WriteObservability(trace_out, metrics_out, rc);
}
