#include "bddfc/base/faults.h"

#include <algorithm>

namespace bddfc {
namespace {

// splitmix64: the registry's only randomness source, so probability
// schedules and RandomFaultPlan are platform-independent.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double UnitDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

const char* ScheduleName(FaultSchedule s) {
  switch (s) {
    case FaultSchedule::kAfterN:
      return "after-n";
    case FaultSchedule::kEveryN:
      return "every-n";
    case FaultSchedule::kProbability:
      return "probability";
  }
  return "?";
}

// Does `spec` fire on the 1-based hit `index`?
bool ScheduleFires(const FaultSpec& spec, uint64_t index) {
  switch (spec.schedule) {
    case FaultSchedule::kAfterN:
      return index > spec.n;
    case FaultSchedule::kEveryN:
      return spec.n > 0 && index % spec.n == 0;
    case FaultSchedule::kProbability:
      return UnitDouble(SplitMix64(spec.seed ^ (index * 0x2545f4914f6cdd1dull))) <
             spec.p;
  }
  return false;
}

}  // namespace

std::string FaultSpec::ToString() const {
  std::string out = site;
  out += " sched=";
  out += ScheduleName(schedule);
  if (schedule == FaultSchedule::kProbability) {
    out += " p=" + std::to_string(p) + " seed=" + std::to_string(seed);
  } else {
    out += " n=" + std::to_string(n);
  }
  if (max_fires != 0) out += " max-fires=" + std::to_string(max_fires);
  if (!action.empty()) out += " action=" + action;
  return out;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultSpec& f : faults) {
    out += f.ToString();
    out += '\n';
  }
  return out;
}

void FaultRegistry::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[spec.site].push_back(Armed{std::move(spec), 0});
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::ArmPlan(const FaultPlan& plan) {
  for (const FaultSpec& spec : plan.faults) Arm(spec);
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hits_.clear();
  fires_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

FaultFire FaultRegistry::Hit(std::string_view site) {
  FaultFire out;
  if (!enabled()) return out;
  std::lock_guard<std::mutex> lock(mu_);
  auto hit_it = hits_.find(site);
  if (hit_it == hits_.end()) hit_it = hits_.emplace(std::string(site), 0).first;
  const uint64_t index = ++hit_it->second;
  auto it = armed_.find(site);
  if (it == armed_.end()) return out;
  for (Armed& a : it->second) {
    if (a.spec.max_fires != 0 && a.fires >= a.spec.max_fires) continue;
    if (!ScheduleFires(a.spec, index)) continue;
    ++a.fires;
    auto fire_it = fires_.find(site);
    if (fire_it == fires_.end()) {
      fire_it = fires_.emplace(std::string(site), 0).first;
    }
    ++fire_it->second;
    out.fired = true;
    out.action = a.spec.action;
    return out;
  }
  return out;
}

uint64_t FaultRegistry::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

uint64_t FaultRegistry::FireCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fires_.find(site);
  return it == fires_.end() ? 0 : it->second;
}

std::vector<std::string> FaultRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(armed_.size());
  for (const auto& [site, specs] : armed_) {
    if (!specs.empty()) out.push_back(site);
  }
  return out;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

const std::vector<std::string>& AllFaultSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      faults::kChaseAlloc,   faults::kChaseBug,   faults::kChaseRound,
      faults::kGovernorCheck, faults::kIndexRefresh, faults::kParserParse,
      faults::kPlanCompile,  faults::kPoolTask,   faults::kSinkMerge,
  };
  return *sites;
}

const std::vector<std::string>& RecoverableFaultSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      faults::kChaseAlloc,    faults::kChaseRound, faults::kGovernorCheck,
      faults::kIndexRefresh,  faults::kPlanCompile, faults::kPoolTask,
      faults::kSinkMerge,
  };
  return *sites;
}

FaultPlan RandomFaultPlan(uint64_t seed) {
  return RandomFaultPlan(seed, RecoverableFaultSites());
}

FaultPlan RandomFaultPlan(uint64_t seed,
                          const std::vector<std::string>& sites) {
  FaultPlan plan;
  if (sites.empty()) return plan;
  uint64_t state = SplitMix64(seed ^ 0xc6a4a7935bd1e995ull);
  auto next = [&state]() {
    state = SplitMix64(state);
    return state;
  };
  const size_t count = 1 + next() % 3;
  for (size_t i = 0; i < count; ++i) {
    FaultSpec spec;
    spec.site = sites[next() % sites.size()];
    switch (next() % 3) {
      case 0:
        spec.schedule = FaultSchedule::kAfterN;
        spec.n = next() % 5;  // fires from hit n+1 on
        break;
      case 1:
        spec.schedule = FaultSchedule::kEveryN;
        spec.n = 1 + next() % 3;
        break;
      default:
        spec.schedule = FaultSchedule::kProbability;
        spec.p = 0.3 + 0.6 * UnitDouble(next());
        spec.seed = next();
        break;
    }
    // Bounded fail-stop only: a random plan must always be recoverable,
    // so it never picks a behavioral action and never fires unboundedly.
    spec.max_fires = 1 + next() % 2;
    plan.faults.push_back(std::move(spec));
  }
  return plan;
}

const char* ParanoiaLevelName(ParanoiaLevel level) {
  switch (level) {
    case ParanoiaLevel::kOff:
      return "off";
    case ParanoiaLevel::kCheap:
      return "cheap";
    case ParanoiaLevel::kFull:
      return "full";
  }
  return "?";
}

bool ParanoiaLevelFromName(std::string_view name, ParanoiaLevel* out) {
  if (name == "off") {
    *out = ParanoiaLevel::kOff;
  } else if (name == "cheap") {
    *out = ParanoiaLevel::kCheap;
  } else if (name == "full") {
    *out = ParanoiaLevel::kFull;
  } else {
    return false;
  }
  return true;
}

}  // namespace bddfc
