#include "bddfc/base/thread_pool.h"

#include <algorithm>

namespace bddfc {

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  if (num_threads_ == 1) return;  // inline mode: no workers
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) {
    // Inline mode: run queued-but-unstarted tasks here so destruction
    // drains the queue exactly like the worker shutdown path below.
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
    while (RunOneLocked(lock)) {
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<Status()> task) {
  const uint64_t parent = obs::Tracer::CurrentSpanId();
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back({next_index_++, parent, std::move(task)});
    statuses_.emplace_back();  // slot for this task's Status
    ++in_flight_;
  }
  work_ready_.notify_one();
}

bool ThreadPool::RunOneLocked(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  QueuedTask qt = std::move(queue_.front());
  queue_.pop_front();
  if (cancel_.cancelled()) {
    // Drain without running: the batch unwinds as fast as the in-flight
    // tasks reach their own cooperative check-points.
    statuses_[qt.index] = Status::ResourceExhausted("cancelled before start");
    if (--in_flight_ == 0) batch_done_.notify_all();
    return true;
  }
  lock.unlock();
  Status st;
  {
    // Re-parent the task's spans under the span that submitted it.
    obs::TraceSpan span("pool.task", qt.parent_span);
    st = qt.fn();
  }
  lock.lock();
  statuses_[qt.index] = std::move(st);
  if (--in_flight_ == 0) batch_done_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    RunOneLocked(lock);
  }
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (workers_.empty()) {
    while (RunOneLocked(lock)) {
    }
  } else {
    batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  }
  Status first;
  for (Status& st : statuses_) {
    if (first.ok() && !st.ok()) first = st;
  }
  statuses_.clear();
  next_index_ = 0;
  return first;
}

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Status ParallelFor(size_t n, size_t threads,
                   const std::function<Status(size_t)>& fn,
                   ExecutionContext* ctx) {
  if (threads <= 1 || n <= 1) {
    Status first;
    for (size_t i = 0; i < n; ++i) {
      if (ctx != nullptr && ctx->Exhausted()) {
        Status st = ctx->CheckPoint("ParallelFor");
        if (first.ok() && !st.ok()) first = std::move(st);
        break;
      }
      Status st = fn(i);
      if (first.ok() && !st.ok()) first = std::move(st);
    }
    return first;
  }
  ThreadPool pool(std::min(threads, n));
  if (ctx != nullptr) pool.SetCancelToken(ctx->cancel_token());
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, ctx, i] {
      if (ctx != nullptr && ctx->Exhausted()) {
        return ctx->CheckPoint("ParallelFor");
      }
      return fn(i);
    });
  }
  return pool.Wait();
}

}  // namespace bddfc
