// Compiled-theory artifact cache (DESIGN.md §2.15).
//
// The daemon's unit of reuse: a theory submitted by any tenant is parsed,
// canonicalized (ToProgramText — sorted facts, stable rule order, quoted
// names), hashed, and compiled ONCE into an Artifact: a fresh re-parse of
// the canonical text (so interned TermIds are a function of the canonical
// form, never of the submission's spelling or fact order) plus its
// saturated chase. Subsequent loads of the same theory — from any tenant,
// in any equivalent spelling — hit the cache and skip the chase entirely.
//
// Concurrency:
//   * lookups and LRU bookkeeping are under one cache mutex (never held
//     across a compile);
//   * compiles are single-flight: concurrent first loads of one key elect
//     one compiling request, the rest block on its completion and share
//     the result — the chase never runs twice for one key;
//   * query-time signature mutation is confined per artifact (see
//     Artifact::mu): each artifact owns its Signature outright, so two
//     sessions querying DIFFERENT artifacts never contend, and two
//     sessions querying the SAME artifact serialize the
//     mark → parse → evaluate → rollback critical section that keeps the
//     artifact's signature byte-stable. (The pre-serve bug: Mark /
//     RollbackTo on a signature shared across concurrent requests rolls
//     back the other request's interned ids mid-evaluation.)
//
// Memory: each admitted artifact charges its estimated bytes to the
// server accountant and releases them on eviction, so the LRU and the
// server-wide memory budget govern the same pool.

#ifndef BDDFC_SERVE_ARTIFACT_CACHE_H_
#define BDDFC_SERVE_ARTIFACT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bddfc/base/governor.h"
#include "bddfc/base/status.h"
#include "bddfc/chase/chase.h"
#include "bddfc/obs/metrics.h"
#include "bddfc/parser/parser.h"
#include "bddfc/rewrite/rewriter.h"

namespace bddfc::serve {

/// 64-bit FNV-1a of the canonical program text — the cache key. Stable
/// across platforms and runs (pure function of the bytes).
uint64_t CanonicalHash(std::string_view canonical_text);

/// Lowercase-hex rendering of a cache key (the wire spelling).
std::string KeyToHex(uint64_t key);
/// Parses a hex key; false on malformed input.
bool KeyFromHex(std::string_view hex, uint64_t* out);

/// One compiled theory. Immutable after admission except through
/// EvalBoolean/RewriteFor, which serialize on `mu` and restore the
/// signature before returning.
struct Artifact {
  /// Canonical program text (rules + facts; no queries) — what the key
  /// hashes and what byte-identity comparisons replay.
  std::string canonical_text;
  uint64_t key = 0;
  /// Re-parsed from canonical_text with an artifact-owned Signature
  /// (copy-on-admit): no other artifact, session or caller holds this
  /// signature, so query-time interning stays private to `mu`.
  Program program;
  /// The saturated chase of the program (fixpoint reached — partial
  /// chases are never admitted).
  ChaseResult chase;
  size_t rounds = 0;
  /// Accounted estimate charged to the server accountant while cached.
  size_t bytes = 0;

  /// Serializes query-time signature mutation (see file comment).
  std::mutex mu;

  explicit Artifact(Program p)
      : program(std::move(p)), chase(program.instance.signature_ptr()) {}

  /// Boolean certain answer: Chase(D, T) ⊨ Q. Parses `query_text` against
  /// the artifact signature under a mark, evaluates, rolls back — the
  /// signature (and therefore canonical_text and every cached id) is
  /// byte-identical before and after, for any interleaving of callers.
  Result<bool> EvalBoolean(const std::string& query_text);

  /// UCQ rewriting of `query_text` under this artifact's theory: returns
  /// "disjuncts=<n> complete=<0|1>" plus one canonical rendered line per
  /// disjunct. Memoized by the query's canonical key (rewriting is the
  /// expensive path); the same mark/rollback discipline applies.
  Result<std::string> RewriteFor(const std::string& query_text,
                                 const RewriteOptions& opts);

 private:
  /// Rewriting memo: canonical query key → rendered result. Guarded by mu.
  std::map<std::string, std::string> rewrite_memo_;
};

/// Budgets a compile runs under (forwarded to RunChase).
struct CompileOptions {
  size_t max_rounds = 256;
  size_t max_facts = 1 << 20;
  size_t threads = 1;
};

/// LRU cache of Artifacts keyed by canonical hash, with single-flight
/// compilation. Thread-safe.
class ArtifactCache {
 public:
  /// `capacity` caps the artifact count (>=1); `accountant` (not owned,
  /// may be null) is charged/released as artifacts are admitted/evicted.
  ArtifactCache(size_t capacity, MemoryAccountant* accountant);
  ~ArtifactCache();

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  struct Outcome {
    Status status = Status::OK();
    std::shared_ptr<Artifact> artifact;  ///< null iff !status.ok()
    bool hit = false;       ///< served from cache (no compile ran)
    bool compiled = false;  ///< THIS call ran the compile
    size_t evicted = 0;     ///< artifacts evicted by this admission
  };

  /// Parses `program_text` (chaos-site faults route through `ctx`'s
  /// registry), canonicalizes, and returns the cached artifact or
  /// compiles and admits it. `ctx` governs the compile (deadline /
  /// memory / cancellation); `metrics` receives the serve.compile_ms
  /// histogram sample on a compile. A chase that fails or stops short of
  /// fixpoint is NOT admitted — the error returns to this caller and the
  /// next load retries.
  Outcome GetOrCompile(const std::string& program_text, ExecutionContext* ctx,
                       obs::MetricsRegistry& metrics,
                       const CompileOptions& copts);

  /// The cached artifact for `key`, bumping its LRU slot; null when absent.
  std::shared_ptr<Artifact> Find(uint64_t key);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total bytes currently charged for cached artifacts.
  size_t charged_bytes() const;

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<Artifact> artifact;
  };
  struct Entry {
    std::shared_ptr<Artifact> artifact;
    uint64_t last_used = 0;
  };

  /// Compiles canonical_text into an admitted artifact (called by the
  /// single-flight winner, outside cache_mu_).
  Outcome Compile(uint64_t key, const std::string& canonical_text,
                  ExecutionContext* ctx, obs::MetricsRegistry& metrics,
                  const CompileOptions& copts);

  /// Inserts under cache_mu_, evicting LRU entries past capacity.
  /// Returns the number evicted.
  size_t Admit(uint64_t key, std::shared_ptr<Artifact> artifact);

  const size_t capacity_;
  MemoryAccountant* const accountant_;

  mutable std::mutex cache_mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t tick_ = 0;

  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Inflight>> inflight_;
};

}  // namespace bddfc::serve

#endif  // BDDFC_SERVE_ARTIFACT_CACHE_H_
