#include "bddfc/chase/skeleton.h"

#include <algorithm>
#include <deque>

namespace bddfc {

Skeleton SkeletonOf(const Theory& theory, const Structure& instance,
                    const ChaseResult& chase) {
  Skeleton out(chase.structure.signature_ptr());
  out.tgps = theory.TgpCandidates();

  // Atoms of D.
  instance.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    out.structure.AddFact(p, row);
  });
  // TGP atoms of the chase.
  chase.structure.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    if (out.tgps.count(p)) out.structure.AddFact(p, row);
  });
  // Every chase element belongs to S (Def. 12), even if it carries only
  // flesh atoms.
  for (TermId e : chase.structure.Domain()) {
    out.structure.AddDomainElement(e);
  }
  return out;
}

SkeletonAnalysis AnalyzeSkeleton(const Structure& s) {
  SkeletonAnalysis out;
  const Signature& sig = s.sig();

  // Collect null-to-null edges and degrees (all incident skeleton atoms).
  std::unordered_map<TermId, std::vector<TermId>> children;
  std::unordered_map<TermId, std::unordered_set<TermId>> parents;
  std::unordered_map<TermId, int> degree;
  // Per (relation, element): number of distinct non-constant predecessors,
  // for the Def. 11 / Lemma 3(ii) check.
  std::unordered_map<TermId, std::unordered_map<PredId, std::unordered_set<TermId>>>
      pred_by_rel;

  std::vector<TermId> nulls;
  for (TermId e : s.Domain()) {
    if (sig.IsNull(e)) nulls.push_back(e);
  }

  s.ForEachFact([&](PredId p, const std::vector<TermId>& row) {
    for (TermId t : row) {
      if (sig.IsNull(t)) ++degree[t];
    }
    if (row.size() == 2 && sig.IsNull(row[0]) && sig.IsNull(row[1]) &&
        row[0] != row[1]) {
      children[row[0]].push_back(row[1]);
      parents[row[1]].insert(row[0]);
      pred_by_rel[row[1]][p].insert(row[0]);
    }
  });

  out.indegree_at_most_one = true;
  for (TermId e : nulls) {
    auto it = parents.find(e);
    if (it == parents.end()) {
      out.roots.push_back(e);
      continue;
    }
    if (it->second.size() > 1) out.indegree_at_most_one = false;
    out.parent.emplace(e, *it->second.begin());
  }
  for (auto& [e, rels] : pred_by_rel) {
    (void)e;
    for (auto& [rel, preds] : rels) {
      (void)rel;
      if (preds.size() > 1) out.indegree_at_most_one = false;
    }
  }

  for (auto& [e, d] : degree) {
    (void)e;
    out.max_degree = std::max(out.max_degree, d);
  }

  // Acyclicity via Kahn's algorithm on null-to-null edges.
  std::unordered_map<TermId, int> indeg;
  for (TermId e : nulls) indeg[e] = 0;
  for (auto& [from, tos] : children) {
    (void)from;
    for (TermId to : tos) ++indeg[to];
  }
  std::deque<TermId> queue;
  for (TermId e : nulls) {
    if (indeg[e] == 0) queue.push_back(e);
  }
  size_t visited = 0;
  while (!queue.empty()) {
    TermId e = queue.front();
    queue.pop_front();
    ++visited;
    auto it = children.find(e);
    if (it != children.end()) {
      for (TermId to : it->second) {
        if (--indeg[to] == 0) queue.push_back(to);
      }
    }
  }
  out.acyclic = visited == nulls.size();
  out.is_forest = out.acyclic && out.indegree_at_most_one;

  if (out.is_forest) {
    // BFS depths from roots.
    std::deque<std::pair<TermId, int>> bfs;
    for (TermId r : out.roots) bfs.emplace_back(r, 0);
    while (!bfs.empty()) {
      auto [e, d] = bfs.front();
      bfs.pop_front();
      auto [it, inserted] = out.depth.emplace(e, d);
      (void)it;
      if (!inserted) continue;
      auto ch = children.find(e);
      if (ch != children.end()) {
        for (TermId c : ch->second) bfs.emplace_back(c, d + 1);
      }
    }
  }
  return out;
}

}  // namespace bddfc
