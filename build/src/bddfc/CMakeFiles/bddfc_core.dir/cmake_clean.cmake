file(REMOVE_RECURSE
  "CMakeFiles/bddfc_core.dir/core/atom.cc.o"
  "CMakeFiles/bddfc_core.dir/core/atom.cc.o.d"
  "CMakeFiles/bddfc_core.dir/core/query.cc.o"
  "CMakeFiles/bddfc_core.dir/core/query.cc.o.d"
  "CMakeFiles/bddfc_core.dir/core/rule.cc.o"
  "CMakeFiles/bddfc_core.dir/core/rule.cc.o.d"
  "CMakeFiles/bddfc_core.dir/core/signature.cc.o"
  "CMakeFiles/bddfc_core.dir/core/signature.cc.o.d"
  "CMakeFiles/bddfc_core.dir/core/structure.cc.o"
  "CMakeFiles/bddfc_core.dir/core/structure.cc.o.d"
  "CMakeFiles/bddfc_core.dir/core/substitution.cc.o"
  "CMakeFiles/bddfc_core.dir/core/substitution.cc.o.d"
  "CMakeFiles/bddfc_core.dir/core/theory.cc.o"
  "CMakeFiles/bddfc_core.dir/core/theory.cc.o.d"
  "libbddfc_core.a"
  "libbddfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddfc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
