// Internal round machinery shared by the chase engines (chase.cc,
// parallel.cc): trigger canonicalization, per-binding buffering, and the
// canonical round application that makes every engine's output
// byte-identical.
//
// Determinism design. Within a round, body bindings may be enumerated in
// any order — the sequential engines follow the join order the matcher
// picks, the parallel engine additionally splits delta anchors into row
// chunks, which changes the matcher's dynamic atom selection and hence the
// discovery order. Byte-identical results therefore cannot rely on
// discovery order anywhere. Instead:
//
//   * buffered datalog additions are a *set*; ApplyRound inserts them
//     sorted by (predicate, argument tuple);
//   * pending existential triggers are keyed by the canonical PatternKey;
//     per key the TriggerLess-least candidate wins (not the first
//     discovered), and ApplyRound fires keys in sorted order — so null
//     invention order, null provenance, and row order are all functions of
//     the round's *set* of derivations;
//   * the dedup counters are occurrence counts minus distinct counts,
//     which are order-independent too.
//
// The headers under chase/ expose this as an implementation detail, not
// API: only chase.cc and parallel.cc include it.

#ifndef BDDFC_CHASE_ROUND_H_
#define BDDFC_CHASE_ROUND_H_

#include <atomic>
#include <cassert>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bddfc/chase/chase.h"
#include "bddfc/eval/match.h"
#include "bddfc/eval/plan.h"

namespace bddfc {
namespace chase_internal {

/// A pending existential trigger: the rule's head with frontier variables
/// grounded and existential variables still symbolic. Keyed for per-round
/// deduplication (one witness per demanded head pattern).
struct PendingExistential {
  int rule_index;
  std::vector<Atom> head_pattern;    // grounded except existential vars
  std::vector<TermId> existentials;  // the symbolic witness variables
};

/// Canonical "which same-key trigger wins" order: least (rule index, head
/// pattern, existential list). Any total order works for correctness —
/// same-key triggers demand the same witnesses up to renaming — but a
/// *value* order makes the winner independent of enumeration order, which
/// keep-first was not.
inline bool TriggerLess(const PendingExistential& a,
                        const PendingExistential& b) {
  if (a.rule_index != b.rule_index) return a.rule_index < b.rule_index;
  if (a.head_pattern != b.head_pattern) return a.head_pattern < b.head_pattern;
  return a.existentials < b.existentials;
}

/// Canonical key of a head pattern, invariant under existential-variable
/// renaming and atom reordering. Defined in round.cc.
std::string PatternKey(const std::vector<Atom>& pattern);

/// Adds a fact to `out` and records its birth round. Returns true when new.
bool AddFactTracked(ChaseResult* out, PredId pred,
                    const std::vector<TermId>& args, int round);

/// One round's buffered derivations, evaluated against the frozen
/// Chase^{i-1} snapshot. Engines fill it (sequentially or from shard
/// tasks); ApplyRound consumes it in canonical order.
struct RoundBuffer {
  /// Distinct head atoms not present in the frozen structure (unsorted).
  std::vector<Atom> datalog;
  /// Unique-key pending triggers, each key's TriggerLess-least candidate.
  std::vector<std::pair<std::string, PendingExistential>> triggers;
  /// Counters and per-round timing merged across the producing tasks.
  ChaseStats stats;

  bool empty() const { return datalog.empty() && triggers.empty(); }
};

/// The read-only inputs one round's enumeration runs against.
struct RoundInputs {
  const Theory& theory;
  const Structure& frozen;  ///< Chase^{i-1}; not mutated until ApplyRound
  const ChaseOptions& options;
  ExecutionContext* ctx;  ///< never null (RunChase installs a local one)
  /// Oblivious-mode run-global (rule, body-binding) dedup. The sequential
  /// engines filter against it during enumeration; the parallel engine at
  /// the merge barrier (equivalent: a delta-driven round enumerates each
  /// binding at most once, so within-round keys are unique).
  std::unordered_set<std::string>* fired;
  /// Per-run compiled-plan cache (thread-safe); nullptr = evaluate rule
  /// bodies through the interpretive Matcher instead. Witness-existence
  /// probes always stay on the Matcher: their patterns are grounded per
  /// binding (caching would never hit) and dominated by point lookups.
  PlanCache* plans = nullptr;
  /// The run's effective behavioral fault, resolved once at RunChase entry
  /// from options.fault or a FaultRegistry fire at faults::kChaseBug.
  /// Round code reads this, never options.fault.
  ChaseFault fault = ChaseFault::kNone;
};

/// Serializes the oblivious-chase firing key of (rule `ri`, binding `b`).
std::string ObliviousKey(size_t ri, const Rule& rule, const Binding& b);

/// Per-binding buffering logic, shared verbatim by the sequential and
/// parallel engines; `Sink` supplies the buffer operations:
///
///   bool BufferDatalog(Atom g);            // false = duplicate (counted)
///   bool ObliviousPreFilter(const std::string& key);  // true = skip now
///   void BufferTrigger(std::string key, PendingExistential pe);
///   size_t FaultSeq();                     // kSkipTriggerDedup suffixes
///
/// BufferDatalog owns the frozen-containment check: the hash sinks probe
/// Contains eagerly per occurrence, the vectorized sink defers both the
/// probe and the dedup to its sorted bulk pass.
///
/// Returns false to stop the enumeration (governor trip).
template <typename Sink>
bool HandleBinding(const RoundInputs& in, size_t ri, const Binding& b,
                   const Matcher& witness, Sink& sink) {
  // Strided governor probe: aborts this task's enumeration on a trip; the
  // post-enumeration check discards the buffered round.
  if (in.ctx->ShouldStop("chase enumerate")) return false;
  const Rule& rule = in.theory.rules()[ri];
  auto ground = [&b](const Atom& a) {
    Atom g = a;
    for (TermId& t : g.args) {
      if (IsVar(t)) {
        auto it = b.find(t);
        if (it != b.end()) t = it->second;
      }
    }
    return g;
  };
  if (!rule.IsExistential()) {
    for (const Atom& h : rule.head) {
      Atom g = ground(h);
      assert(g.IsGround() && "datalog rule with unbound head variable");
      sink.BufferDatalog(std::move(g));
    }
    return true;
  }
  // Existential TGD: the non-oblivious check — is the head already
  // witnessed in Chase^i under this frontier binding?
  std::vector<Atom> pattern;
  pattern.reserve(rule.head.size());
  for (const Atom& h : rule.head) pattern.push_back(ground(h));
  std::string key;
  if (in.options.oblivious) {
    // Blind chase: one witness per (rule, body binding), ever.
    key = ObliviousKey(ri, rule, b);
    if (sink.ObliviousPreFilter(key)) return true;
  } else {
    if (witness.Exists(pattern, {})) return true;
    key = PatternKey(pattern);
    if (in.fault == ChaseFault::kSkipTriggerDedup) {
      // Injected bug: make every key unique so same-pattern triggers stop
      // collapsing to one witness.
      key += "#" + std::to_string(sink.FaultSeq());
    }
  }
  PendingExistential pe;
  pe.rule_index = static_cast<int>(ri);
  pe.head_pattern = std::move(pattern);
  pe.existentials = rule.ExistentialVariables();
  sink.BufferTrigger(std::move(key), std::move(pe));
  return true;
}

/// Bands for evaluating `rule`'s body with delta anchor `di` confined to
/// rows [begin, end) of its relation: atoms before the anchor stay on
/// pre-round rows, atoms after it range over the full relation — the
/// standard old/new split, with the anchor band narrowed to one chunk for
/// sharded scans (the sequential engines pass the whole delta).
std::vector<RowBand> AnchorBands(const Structure& s, const Rule& rule,
                                 size_t di, uint32_t begin, uint32_t end);

/// Default per-predicate raw-tail size (tuples) at which the vectorized
/// sink compacts: sorts the tail, merges it into the kept prefix, and
/// answers containment in one bulk pass. Large enough that typical rounds
/// compact exactly once, at Finish; tests shrink it to exercise
/// mid-enumeration compactions.
inline constexpr size_t kSinkCompactTuples = 1 << 16;

/// Flat per-predicate candidate buffers with sort-dedup compaction and
/// bulk containment — the datalog half of the vectorized round sink
/// (DESIGN §2.13), shared by the chase engines and SaturateDatalog.
///
/// Append is the entire per-occurrence cost: bump a cursor and copy
/// `arity` TermIds; no Atom allocation, no hash probe, no dedup-set
/// insert. Compact() restores the invariant that the buffer's prefix is
/// sorted, distinct, and absent from `frozen`: the raw tail is sorted,
/// duplicate groups collapse with order-independent counting (a group of
/// k occurrences contributes k-1 to deduped() whether it collapses in one
/// compaction, telescopes across several, or splits across parallel
/// tasks), and the fresh distinct tuples go through one bulk
/// Structure::ContainsSorted probe. The counters therefore match the hash
/// sinks' exactly — the byte-identity contract extends to stats.
class DatalogSinkBuffers {
 public:
  /// `frozen` answers containment (Chase^{i-1}; must outlive the sink).
  /// `drop_dup_groups` is the kSinkDropDup self-test fault: tuples derived
  /// more than once get dropped instead of collapsed.
  DatalogSinkBuffers(const Structure& frozen, size_t compact_threshold,
                     bool drop_dup_groups);

  /// Reserves one tuple of `pred` and returns the slot to write `arity`
  /// TermIds into (invalidated by the next sink call; null iff arity 0).
  TermId* Append(PredId pred, size_t arity);
  void AppendAtom(const Atom& g);

  /// Final compaction, then emits every surviving tuple — sorted,
  /// distinct, frozen-free — as Atoms appended to `out`.
  void FinishInto(std::vector<Atom>* out);

  /// One predicate's surviving tuples as a flat sorted run (`tuples`
  /// entries of `arity` TermIds; arity-0 runs carry only the count).
  struct Run {
    PredId pred = -1;
    size_t arity = 0;
    size_t tuples = 0;
    std::vector<TermId> data;
  };
  /// Final compaction, then moves the per-predicate runs out (ascending
  /// pred) — the parallel barrier merges runs across tasks.
  std::vector<Run> TakeRuns();

  size_t candidates() const { return candidates_; }
  size_t contained() const { return contained_; }
  size_t probes() const { return probes_; }
  size_t deduped() const { return deduped_; }

 private:
  struct PredBuf {
    PredId pred = -1;
    size_t arity = 0;
    /// Tuples [0, kept) are the compacted prefix (sorted, distinct, not in
    /// frozen); tuples [kept, kept + tail) are the raw unsorted tail.
    std::vector<TermId> data;
    size_t kept = 0;
    size_t tail = 0;
    /// Parallel to the kept prefix, only under drop_dup_groups: tuple ever
    /// had a duplicate occurrence (dropped at Finish/TakeRuns).
    std::vector<char> kept_dup;
  };

  PredBuf& Buf(PredId pred, size_t arity);
  void Compact(PredBuf* pb);

  const Structure& frozen_;
  const size_t compact_threshold_;
  const bool drop_dup_groups_;
  std::vector<int32_t> pred_slot_;  // pred -> index into bufs_, or -1
  std::vector<PredBuf> bufs_;      // first-appearance order
  size_t candidates_ = 0;
  size_t contained_ = 0;
  size_t probes_ = 0;
  size_t deduped_ = 0;
};

/// Merges per-task sorted distinct runs (TakeRuns output, several tasks'
/// worth) into Atoms appended to `out`: cross-run duplicate groups
/// collapse to one copy, counting the extra occurrences into *deduped —
/// the +1-per-extra-run rule that makes the total dedup count shard-count
/// independent. Under `drop_dup_groups` (kSinkDropDup) cross-run
/// duplicates are dropped entirely instead. Runs are already frozen-free,
/// so no containment re-probe happens here.
void MergeDatalogRuns(std::vector<DatalogSinkBuffers::Run> runs,
                      bool drop_dup_groups, std::vector<Atom>* out,
                      size_t* deduped);

/// Sorts raw (key, candidate) trigger pairs, collapses each key to its
/// TriggerLess-least candidate counting dropped occurrences into *tdedup,
/// and appends the unique-key survivors to *out in key order — the same
/// winner the hash sinks' keep-min maps pick, independent of arrival
/// order.
void DedupTriggers(
    std::vector<std::pair<std::string, PendingExistential>> raw,
    std::vector<std::pair<std::string, PendingExistential>>* out,
    size_t* tdedup);

/// The vectorized round sink (ChaseOptions::vectorized_sink): datalog
/// candidates go through DatalogSinkBuffers, existential triggers append
/// raw and dedup once at the end. Satisfies the HandleBinding Sink
/// interface, plus AppendDatalogSlot for block-at-a-time head grounding.
class VectorSink {
 public:
  /// `stats` receives the dedup/containment counters when the sink is
  /// finalized. `shared_fault_seq` backs FaultSeq across the parallel
  /// engine's tasks (nullptr = private counter); `defer_oblivious`
  /// disables the in-enumeration fired-key filter (the parallel engine
  /// filters at the merge barrier instead, where keys are unique within a
  /// delta round).
  VectorSink(const RoundInputs& in, ChaseStats* stats,
             size_t compact_threshold = kSinkCompactTuples,
             std::atomic<size_t>* shared_fault_seq = nullptr,
             bool defer_oblivious = false);

  bool BufferDatalog(Atom g) {
    bufs_.AppendAtom(g);
    return true;
  }
  bool ObliviousPreFilter(const std::string& key);
  void BufferTrigger(std::string key, PendingExistential pe) {
    triggers_.emplace_back(std::move(key), std::move(pe));
  }
  size_t FaultSeq();
  TermId* AppendDatalogSlot(PredId pred, size_t arity) {
    return bufs_.Append(pred, arity);
  }

  /// Serial engines: final-compacts, folds counters into `stats`, and
  /// emits into `buf` exactly what the hash sinks would have — under a
  /// "chase.sink" trace span. Runs even after a governor trip (the
  /// kTornExhaust self-test applies a torn round's buffered datalog).
  void Finish(RoundBuffer* buf);

  /// Parallel task path: final-compacts, folds counters into `stats`, and
  /// moves out the per-predicate runs; triggers come out raw via
  /// TakeRawTriggers for the barrier's DedupTriggers pass.
  std::vector<DatalogSinkBuffers::Run> TakeDatalogRuns();
  std::vector<std::pair<std::string, PendingExistential>> TakeRawTriggers() {
    return std::move(triggers_);
  }

 private:
  void FoldCounters();

  const RoundInputs& in_;
  ChaseStats* stats_;
  DatalogSinkBuffers bufs_;
  std::vector<std::pair<std::string, PendingExistential>> triggers_;
  std::atomic<size_t>* shared_fault_seq_;
  size_t local_fault_seq_ = 0;
  bool defer_oblivious_;
};

/// Grounding template of one datalog head atom against a plan's slot
/// layout: per position, a constant or the slot holding the variable's
/// value. Lets block grounding resolve a head occurrence with `arity`
/// array reads instead of per-variable Binding lookups.
struct HeadTemplate {
  struct Arg {
    bool is_const = false;
    TermId value = 0;   // constant value when is_const
    uint32_t slot = 0;  // slot index otherwise
  };
  PredId pred = -1;
  size_t arity = 0;
  std::vector<Arg> args;
};

/// Builds the head templates of a datalog rule against `slot_vars` (the
/// PlanSlotVars order of the body's plan). Datalog heads only use body
/// variables, so every head variable resolves to a slot.
std::vector<HeadTemplate> BuildHeadTemplates(
    const Rule& rule, const std::vector<TermId>& slot_vars);

/// Enumerates rule `ri` with delta anchor `di` over `bands` into the
/// vectorized sink: datalog rules on the compiled path ground their heads
/// block-at-a-time straight from the executor's slot blocks (no Binding,
/// no Atom per occurrence); existential rules and the interpretive path
/// fall back to per-binding HandleBinding. Shared by the sequential
/// vectorized round and the parallel engine's shard tasks.
void EnumerateAnchorVectorized(const RoundInputs& in, size_t ri, size_t di,
                               const std::vector<RowBand>& bands,
                               const Matcher& witness, VectorSink* sink,
                               MatchStats* match_stats);

/// Sequential enumeration of one round into `buf`: delta-anchored
/// (ChaseEngine::kDelta) or full re-enumeration (kNaive). Delta rounds
/// route through the vectorized sink when options.vectorized_sink is set;
/// kNaive always uses the per-binding hash sink (the A/B reference).
void EnumerateRoundSequential(const RoundInputs& in, bool delta,
                              RoundBuffer* buf);

/// Applies a completed round's buffer in canonical order: datalog
/// additions sorted by (pred, args), then triggers in key order, inventing
/// nulls and recording provenance. Returns the number of facts added.
size_t ApplyRound(RoundBuffer* buf, size_t round, ChaseResult* out);

}  // namespace chase_internal
}  // namespace bddfc

#endif  // BDDFC_CHASE_ROUND_H_
